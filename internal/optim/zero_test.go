package optim

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func buildZeroModel(seed int64) nn.Module {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewSequential(
		nn.NewLinear(rng, "fc1", 5, 7),
		nn.Tanh{},
		nn.NewLinear(rng, "fc2", 7, 3),
	)
}

// TestZeroSGDMatchesDenseSGD: ZeRO sharding must not change the math —
// N ranks with sharded optimizer state follow exactly the trajectory of
// dense momentum SGD applied to the averaged gradients.
func TestZeroSGDMatchesDenseSGD(t *testing.T) {
	const world, iters = 3, 5
	dataRng := rand.New(rand.NewSource(1))
	inputs := make([][]*tensor.Tensor, world)
	targets := make([][]*tensor.Tensor, world)
	for r := 0; r < world; r++ {
		for i := 0; i < iters; i++ {
			inputs[r] = append(inputs[r], tensor.RandN(dataRng, 1, 2, 5))
			targets[r] = append(targets[r], tensor.RandN(dataRng, 1, 2, 3))
		}
	}

	// Reference: dense momentum SGD on manually averaged gradients.
	ref := buildZeroModel(9)
	refOpt := NewSGD(ref.Parameters(), 0.05)
	refOpt.Momentum = 0.9
	for i := 0; i < iters; i++ {
		refOpt.ZeroGrad()
		// Average gradients over the world's shards by accumulating
		// each shard's backward then scaling (grads accumulate in .Grad).
		for r := 0; r < world; r++ {
			out := ref.Forward(autograd.Constant(inputs[r][i]))
			autograd.Backward(autograd.MSELoss(out, autograd.Constant(targets[r][i])), nil)
		}
		for _, p := range ref.Parameters() {
			tensor.ScaleInPlace(p.Grad, 1.0/world)
		}
		refOpt.Step()
	}

	// ZeRO: each rank computes local gradients; Step shards the update.
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	zModels := make([]nn.Module, world)
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = func() error {
				m := buildZeroModel(9) // same seed: replicas identical
				zModels[rank] = m
				opt, err := NewZeroSGD(m.Parameters(), groups[rank], 0.05)
				if err != nil {
					return err
				}
				opt.Momentum = 0.9
				for i := 0; i < iters; i++ {
					opt.ZeroGrad()
					out := m.Forward(autograd.Constant(inputs[rank][i]))
					autograd.Backward(autograd.MSELoss(out, autograd.Constant(targets[rank][i])), nil)
					if err := opt.Step(); err != nil {
						return err
					}
				}
				return nil
			}()
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}

	for rank := 0; rank < world; rank++ {
		for i, p := range zModels[rank].Parameters() {
			if !p.Value.AllClose(ref.Parameters()[i].Value, 1e-4, 1e-6) {
				t.Fatalf("rank %d param %d diverged from dense SGD (max diff %v)",
					rank, i, p.Value.MaxAbsDiff(ref.Parameters()[i].Value))
			}
		}
	}
	// Replicas bitwise identical (they all applied the same gathered
	// shards).
	for rank := 1; rank < world; rank++ {
		for i, p := range zModels[rank].Parameters() {
			if !p.Value.Equal(zModels[0].Parameters()[i].Value) {
				t.Fatalf("rank %d param %d not identical to rank 0", rank, i)
			}
		}
	}
}

func TestZeroSGDShardsState(t *testing.T) {
	const world = 4
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	m := buildZeroModel(2)
	total := nn.NumParams(m)
	opt, err := NewZeroSGD(m.Parameters(), groups[0], 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Shard is ~1/world of the full state (plus padding).
	if opt.ShardBytes() >= 4*total {
		t.Fatalf("shard %dB not smaller than full state %dB", opt.ShardBytes(), 4*total)
	}
	if opt.ShardBytes() < 4*total/world {
		t.Fatalf("shard %dB smaller than total/world", opt.ShardBytes())
	}
}

func TestZeroSGDNilGradContributesZero(t *testing.T) {
	const world = 2
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	models := make([]nn.Module, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m := buildZeroModel(3)
			models[rank] = m
			opt, err := NewZeroSGD(m.Parameters(), groups[rank], 0.1)
			if err != nil {
				t.Error(err)
				return
			}
			// Only rank 0 produces gradients; rank 1's stay nil.
			if rank == 0 {
				rng := rand.New(rand.NewSource(4))
				out := m.Forward(autograd.Constant(tensor.RandN(rng, 1, 2, 5)))
				autograd.Backward(autograd.Sum(out), nil)
			}
			if err := opt.Step(); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	// Both replicas moved identically (average of grad and zero).
	for i, p := range models[0].Parameters() {
		if !p.Value.Equal(models[1].Parameters()[i].Value) {
			t.Fatalf("param %d differs across ranks", i)
		}
	}
}

func TestZeroSGDRejectsPlainGroups(t *testing.T) {
	if _, err := NewZeroSGD(buildZeroModel(1).Parameters(), plainPG{}, 0.1); err == nil {
		t.Fatal("non-extended group must be rejected")
	}
	groups := comm.NewInProcGroups(1, comm.Options{})
	defer groups[0].Close()
	if _, err := NewZeroSGD(nil, groups[0], 0.1); err == nil {
		t.Fatal("empty parameter list must be rejected")
	}
}

// plainPG implements only the core ProcessGroup interface.
type plainPG struct{}

func (plainPG) Rank() int                                            { return 0 }
func (plainPG) Size() int                                            { return 1 }
func (plainPG) AllReduce(data []float32, op comm.ReduceOp) comm.Work { return comm.CompletedWork(nil) }
func (plainPG) Broadcast(data []float32, root int) comm.Work         { return comm.CompletedWork(nil) }
func (plainPG) AllGather(dst [][]float32, src []float32) comm.Work   { return comm.CompletedWork(nil) }
func (plainPG) Barrier() comm.Work                                   { return comm.CompletedWork(nil) }
func (plainPG) Close() error                                         { return nil }
