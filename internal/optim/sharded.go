package optim

// ShardedMomentumStep applies one momentum-SGD update in place to a
// contiguous shard of the flattened parameter vector: the update loop
// ZeroSGD and internal/fsdp's sharded optimizers share. gradAvg holds
// the already-averaged gradient shard and velocity this rank's
// momentum shard; all three slices have equal length.
//
// The operation sequence is element-for-element the one SGD.Step
// performs (v = momentum*v + g; p -= lr*v, with v = g on the first
// step since velocity starts at zero), and p -= lr*v is bitwise
// p += (-lr)*v in IEEE 754 — so a sharded optimizer whose gradient
// shard is bitwise the AllReduce result produces bitwise the
// parameters a replicated SGD would. That equivalence is what the
// DDP-vs-ZeRO agreement suites assert; change this loop only in
// lockstep with SGD.Step.
func ShardedMomentumStep(shard, gradAvg, velocity []float32, lr, momentum float32) {
	for i := range shard {
		g := gradAvg[i]
		if momentum != 0 {
			velocity[i] = momentum*velocity[i] + g
			g = velocity[i]
		}
		shard[i] -= lr * g
	}
}
