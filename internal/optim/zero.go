package optim

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
)

// ZeroSGD is a ZeRO-style (stage 1/2) sharded momentum-SGD optimizer,
// the alternative design the paper's Section 7 compares DDP against:
// instead of AllReducing full gradients and keeping full optimizer
// state on every rank, gradients are ReduceScattered so each rank owns
// the averaged gradients — and the momentum state — for only 1/world of
// the parameters; after updating its shard, each rank AllGathers the
// updated parameters. Communication volume matches ring AllReduce
// (reduce-scatter + all-gather), but optimizer memory drops by a factor
// of world, trading the extra coordination the paper describes.
//
// ZeroSGD replaces DDP for the gradient synchronization step: use it on
// a bare model whose replicas start identical, and call Step after each
// local backward pass.
type ZeroSGD struct {
	LR       float32
	Momentum float32

	pg     comm.ExtendedGroup
	params []*nn.Parameter

	total    int // unpadded flat length
	shardLen int // padded per-rank shard length
	flat     []float32
	shardAvg []float32
	velocity []float32 // this rank's shard only
	gathered [][]float32
}

// NewZeroSGD builds a sharded optimizer over the model's parameters.
// All ranks must construct it identically. The process group must
// support the extended collectives (mesh-backed groups do).
func NewZeroSGD(params []*nn.Parameter, pg comm.ProcessGroup, lr float32) (*ZeroSGD, error) {
	eg, ok := pg.(comm.ExtendedGroup)
	if !ok {
		return nil, fmt.Errorf("optim: process group does not support ReduceScatter/AllGather")
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("optim: no parameters")
	}
	total := 0
	for _, p := range params {
		total += p.Value.Size()
	}
	world := pg.Size()
	shardLen := (total + world - 1) / world
	z := &ZeroSGD{
		LR:       lr,
		pg:       eg,
		params:   params,
		total:    total,
		shardLen: shardLen,
		flat:     make([]float32, shardLen*world),
		shardAvg: make([]float32, shardLen),
		velocity: make([]float32, shardLen),
		gathered: make([][]float32, world),
	}
	for i := range z.gathered {
		z.gathered[i] = make([]float32, shardLen)
	}
	return z, nil
}

// ShardBytes returns the per-rank optimizer state size in bytes — the
// quantity ZeRO shrinks by a factor of world.
func (z *ZeroSGD) ShardBytes() int { return 4 * z.shardLen }

// Step reduces gradients across ranks, applies momentum SGD to this
// rank's parameter shard, and AllGathers the updated parameters so all
// replicas stay identical. Parameters with nil gradients contribute
// zeros (their averaged gradient may still be non-zero if other ranks
// produced one).
func (z *ZeroSGD) Step() error {
	// Flatten local gradients (zeros where absent).
	off := 0
	for _, p := range z.params {
		n := p.Value.Size()
		if p.Grad != nil {
			copy(z.flat[off:off+n], p.Grad.Data())
		} else {
			for i := off; i < off+n; i++ {
				z.flat[i] = 0
			}
		}
		off += n
	}
	for i := z.total; i < len(z.flat); i++ {
		z.flat[i] = 0 // padding
	}

	// Average this rank's gradient shard across all ranks.
	if err := z.pg.ReduceScatter(z.shardAvg, z.flat, comm.Avg).Wait(); err != nil {
		return fmt.Errorf("optim: zero reduce-scatter: %w", err)
	}

	// Momentum update on the owned shard of the flattened parameters.
	rank := z.pg.Rank()
	shardStart := rank * z.shardLen
	shard := z.flatParams(shardStart)
	ShardedMomentumStep(shard, z.shardAvg, z.velocity, z.LR, z.Momentum)

	// Publish updated shards to everyone.
	if err := z.pg.AllGather(z.gathered, shard).Wait(); err != nil {
		return fmt.Errorf("optim: zero all-gather: %w", err)
	}
	for r := 0; r < z.pg.Size(); r++ {
		z.writeFlatParams(r*z.shardLen, z.gathered[r])
	}
	return nil
}

// ZeroGrad clears all parameter gradients.
func (z *ZeroSGD) ZeroGrad() {
	for _, p := range z.params {
		p.ZeroGrad()
	}
}

// flatParams reads the parameter values at flat offsets
// [start, start+shardLen) into a fresh slice (padding reads as zero).
func (z *ZeroSGD) flatParams(start int) []float32 {
	out := make([]float32, z.shardLen)
	z.forEachOverlap(start, func(i int, pdata []float32, j int) {
		out[i] = pdata[j]
	})
	return out
}

// writeFlatParams stores vals back into the parameters at flat offsets
// [start, start+shardLen); padding positions are ignored.
func (z *ZeroSGD) writeFlatParams(start int, vals []float32) {
	z.forEachOverlap(start, func(i int, pdata []float32, j int) {
		pdata[j] = vals[i]
	})
}

// forEachOverlap visits every (shard index, parameter storage, element
// index) triple where the shard window [start, start+shardLen)
// intersects the concatenated parameter vector.
func (z *ZeroSGD) forEachOverlap(start int, visit func(i int, pdata []float32, j int)) {
	end := start + z.shardLen
	off := 0
	for _, p := range z.params {
		n := p.Value.Size()
		lo, hi := max(start, off), min(end, off+n)
		if lo < hi {
			pdata := p.Value.Data()
			for g := lo; g < hi; g++ {
				visit(g-start, pdata, g-off)
			}
		}
		off += n
		if off >= end {
			break
		}
	}
}
