package comm

import (
	"errors"
	"fmt"
)

// ReduceOp selects the arithmetic applied by AllReduce.
type ReduceOp int

// Supported reductions, mirroring c10d.
const (
	Sum ReduceOp = iota
	Prod
	Min
	Max
	// Avg sums and divides by world size, the reduction DDP applies to
	// gradients.
	Avg
)

// String returns the op name.
func (op ReduceOp) String() string {
	switch op {
	case Sum:
		return "sum"
	case Prod:
		return "prod"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	default:
		return fmt.Sprintf("ReduceOp(%d)", int(op))
	}
}

// Work is an async handle for a submitted collective, like
// torch.distributed's Work: Wait blocks until the operation completed
// on this rank and returns its error.
type Work interface {
	Wait() error
}

// ErrClosed is returned for operations submitted after Close.
var ErrClosed = errors.New("comm: process group closed")

// ProcessGroup is the collective communication API (paper Fig 1,
// bottom layer). Operations execute asynchronously in submission order.
type ProcessGroup interface {
	// Rank returns this participant's index.
	Rank() int
	// Size returns the number of participants.
	Size() int
	// AllReduce reduces data in place across all ranks. Every rank must
	// pass an equally-sized slice.
	AllReduce(data []float32, op ReduceOp) Work
	// Broadcast overwrites data on every rank with root's contents.
	Broadcast(data []float32, root int) Work
	// AllGather fills dst[r] with rank r's src on every rank. dst must
	// have Size() slices of len(src).
	AllGather(dst [][]float32, src []float32) Work
	// Barrier blocks all ranks until everyone arrives.
	Barrier() Work
	// Close shuts the group down; in-flight operations complete first.
	Close() error
}

// doneWork is an already-completed Work.
type doneWork struct{ err error }

func (w doneWork) Wait() error { return w.err }

// CompletedWork returns a Work that is already finished with err.
func CompletedWork(err error) Work { return doneWork{err: err} }

// pendingWork completes when its op finishes executing on the worker.
type pendingWork struct {
	done chan struct{}
	err  error
}

func newPendingWork() *pendingWork { return &pendingWork{done: make(chan struct{})} }

func (w *pendingWork) Wait() error {
	<-w.done
	return w.err
}

func (w *pendingWork) finish(err error) {
	w.err = err
	close(w.done)
}

// WaitAll waits on every handle and returns the first error.
func WaitAll(works ...Work) error {
	var first error
	for _, w := range works {
		if w == nil {
			continue
		}
		if err := w.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
