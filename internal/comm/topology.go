package comm

import (
	"fmt"
	"strings"
)

// Topology maps every rank of a process group to the host (machine) it
// runs on — the placement information topology-aware collectives need.
// The paper's Section 6.1 "Resource Allocation" observation motivates
// it: a flat ring that spans machine boundaries forces every server's
// NIC to carry the crossing edges of all concurrent rings, collapsing
// per-ring bandwidth to NIC/GPUsPerServer. Knowing which ranks share a
// host lets the Hierarchical algorithm keep most traffic on the fast
// intra-host links and send only one rank's worth of data per host
// across the network.
//
// A Topology is immutable after construction. Hosts are compared as
// opaque labels; ranks sharing a label are assumed to share fast local
// connectivity. Three sources produce one:
//
//   - comm.Options.Topology, set explicitly by the caller (in-proc
//     meshes and tests use this to lay out simulated hosts);
//   - transport meshes that know peer placement (TCP meshes implement
//     transport.HostLister from the rendezvous addresses);
//   - elastic rendezvous rounds, whose members publish their host so
//     regenerated groups stay topology-aware (elastic.Assignment.Hosts).
type Topology struct {
	hosts   []string // host label per rank
	hostIdx []int    // index into groups per rank
	groups  [][]int  // ranks per host, ordered by each host's lowest rank
}

// NewTopology builds a Topology from per-rank host labels: hosts[r] is
// the label of the machine rank r runs on. The slice is copied.
func NewTopology(hosts []string) *Topology {
	t := &Topology{
		hosts:   append([]string(nil), hosts...),
		hostIdx: make([]int, len(hosts)),
	}
	seen := make(map[string]int, len(hosts))
	for r, h := range t.hosts {
		i, ok := seen[h]
		if !ok {
			i = len(t.groups)
			seen[h] = i
			t.groups = append(t.groups, nil)
		}
		t.hostIdx[r] = i
		t.groups[i] = append(t.groups[i], r)
	}
	return t
}

// Size returns the number of ranks the topology covers.
func (t *Topology) Size() int { return len(t.hosts) }

// NumHosts returns the number of distinct hosts.
func (t *Topology) NumHosts() int { return len(t.groups) }

// HostOf returns rank's host label.
func (t *Topology) HostOf(rank int) string { return t.hosts[rank] }

// Hosts returns a copy of the per-rank host labels.
func (t *Topology) Hosts() []string { return append([]string(nil), t.hosts...) }

// HostRanks returns the ranks sharing rank's host, in ascending order.
// The first entry is the host's leader. The returned slice is shared;
// callers must not mutate it.
func (t *Topology) HostRanks(rank int) []int { return t.groups[t.hostIdx[rank]] }

// Leaders returns one rank per host — the lowest rank on each — in
// ascending order. They form the inter-host ring of the Hierarchical
// algorithm.
func (t *Topology) Leaders() []int {
	leaders := make([]int, len(t.groups))
	for i, g := range t.groups {
		leaders[i] = g[0]
	}
	return leaders
}

// MultiHost reports whether the topology spans more than one host.
func (t *Topology) MultiHost() bool { return len(t.groups) > 1 }

// Flat reports whether every host holds exactly one rank — the layout
// in which a hierarchy has nothing to exploit and Hierarchical
// degenerates to a plain ring over all ranks.
func (t *Topology) Flat() bool { return len(t.groups) == len(t.hosts) }

// Hierarchical reports whether the hierarchy can beat a flat ring:
// more than one host, and at least one host holding several ranks (so
// the intra-host phases actually shed cross-machine traffic).
func (t *Topology) Hierarchical() bool { return t.MultiHost() && !t.Flat() }

// String renders the layout compactly, e.g. "6 ranks / 3 hosts (3+2+1)".
func (t *Topology) String() string {
	sizes := make([]string, len(t.groups))
	for i, g := range t.groups {
		sizes[i] = fmt.Sprint(len(g))
	}
	return fmt.Sprintf("%d ranks / %d hosts (%s)", len(t.hosts), len(t.groups), strings.Join(sizes, "+"))
}
