package comm

import (
	"fmt"
	"strings"
)

// Topology maps every rank of a process group to its place in the
// cluster's physical hierarchy — the placement information
// topology-aware collectives need. The paper's Section 6.1 "Resource
// Allocation" observation motivates it: a flat ring that spans machine
// boundaries forces every server's NIC to carry the crossing edges of
// all concurrent rings, collapsing per-ring bandwidth to
// NIC/GPUsPerServer. Knowing which ranks share a host lets the
// Hierarchical algorithm keep most traffic on the fast intra-host
// links and send only one rank's worth of data per host across the
// network.
//
// Labels may be structured: "/"-separated components describe an
// N-level hierarchy outermost-first, e.g. "pod0/rack1/hostA" places a
// rank in pod0, rack rack1 within it, and host hostA within that.
// Level 0 groups ranks by the first component, level 1 by the first
// two, and so on; the deepest level (the full label) is the host. A
// label without "/" is the plain two-level host/world model of PR 4.
// Labels whose component counts disagree are treated as opaque
// single-level host names. The N-level Hierarchical schedule reduces
// onto group leaders level by level from the hosts outward, rings the
// outermost leaders, and broadcasts back down (see
// hierarchicalAllReduce).
//
// A Topology is immutable after construction. Hosts are compared as
// opaque labels; ranks sharing a label are assumed to share fast local
// connectivity. Three sources produce one:
//
//   - comm.Options.Topology, set explicitly by the caller (in-proc
//     meshes and tests use this to lay out simulated hosts);
//   - transport meshes that know peer placement (TCP meshes implement
//     transport.HostLister from the rendezvous addresses);
//   - elastic rendezvous rounds, whose members publish their host so
//     regenerated groups stay topology-aware (elastic.Assignment.Hosts).
//     Structured labels pass through rendezvous unchanged, so a
//     regenerated group rebuilds the full hierarchy.
type Topology struct {
	hosts   []string // full (possibly structured) host label per rank
	hostIdx []int    // index into groups per rank
	groups  [][]int  // ranks per host, ordered by each host's lowest rank

	levels int // hierarchy depth (1 for unstructured labels)
	// levelGroups[l] are the rank groups sharing their first l+1 label
	// components, each ascending, ordered by lowest rank; levelIdx[l][r]
	// is rank r's group index at level l. levelGroups[levels-1] is the
	// host level and aliases groups.
	levelGroups [][][]int
	levelIdx    [][]int
}

// NewTopology builds a Topology from per-rank host labels: hosts[r] is
// the label of the machine rank r runs on, optionally "/"-structured
// (outermost level first). The slice is copied.
func NewTopology(hosts []string) *Topology {
	t := &Topology{
		hosts: append([]string(nil), hosts...),
	}
	split := make([][]string, len(t.hosts))
	t.levels = 1
	uniform := true
	for r, h := range t.hosts {
		split[r] = strings.Split(h, "/")
		if r > 0 && len(split[r]) != len(split[0]) {
			uniform = false
		}
	}
	if uniform && len(split) > 0 {
		t.levels = len(split[0])
	}
	t.levelGroups = make([][][]int, t.levels)
	t.levelIdx = make([][]int, t.levels)
	for l := 0; l < t.levels; l++ {
		t.levelIdx[l] = make([]int, len(t.hosts))
		seen := make(map[string]int, len(t.hosts))
		for r := range t.hosts {
			key := t.hosts[r]
			if uniform {
				key = strings.Join(split[r][:l+1], "/")
			}
			i, ok := seen[key]
			if !ok {
				i = len(t.levelGroups[l])
				seen[key] = i
				t.levelGroups[l] = append(t.levelGroups[l], nil)
			}
			t.levelIdx[l][r] = i
			t.levelGroups[l][i] = append(t.levelGroups[l][i], r)
		}
	}
	t.groups = t.levelGroups[t.levels-1]
	t.hostIdx = t.levelIdx[t.levels-1]
	return t
}

// Size returns the number of ranks the topology covers.
func (t *Topology) Size() int { return len(t.hosts) }

// NumHosts returns the number of distinct hosts (deepest-level groups).
func (t *Topology) NumHosts() int { return len(t.groups) }

// Levels returns the hierarchy depth: 1 for plain host labels, the
// number of "/"-separated components for structured ones.
func (t *Topology) Levels() int { return t.levels }

// NumGroups returns the number of distinct groups at the given level
// (0 = outermost). Level levels-1 equals NumHosts.
func (t *Topology) NumGroups(level int) int { return len(t.levelGroups[level]) }

// HostOf returns rank's full host label.
func (t *Topology) HostOf(rank int) string { return t.hosts[rank] }

// Hosts returns a copy of the per-rank host labels.
func (t *Topology) Hosts() []string { return append([]string(nil), t.hosts...) }

// HostRanks returns the ranks sharing rank's host, in ascending order.
// The first entry is the host's leader. The returned slice is shared;
// callers must not mutate it.
func (t *Topology) HostRanks(rank int) []int { return t.groups[t.hostIdx[rank]] }

// Leaders returns one rank per host — the lowest rank on each — in
// ascending order. They form the inter-host phases of the Hierarchical
// algorithm.
func (t *Topology) Leaders() []int { return t.levelLeaders(t.levels - 1) }

// levelLeaders returns one rank per level-l group — each group's lowest
// rank — in ascending order. Level 0's leaders form the top ring of the
// N-level Hierarchical schedule.
func (t *Topology) levelLeaders(l int) []int {
	leaders := make([]int, len(t.levelGroups[l]))
	for i, g := range t.levelGroups[l] {
		leaders[i] = g[0]
	}
	return leaders
}

// levelGroupOf returns rank's group at level l (ascending, shared —
// callers must not mutate).
func (t *Topology) levelGroupOf(l, rank int) []int {
	return t.levelGroups[l][t.levelIdx[l][rank]]
}

// phaseParticipants returns the ranks taking part in the level-l
// reduce/broadcast phase of rank's level-l group: every member at the
// deepest level, one leader per child group above it. Because groups
// nest, the leader of a level-l group is also the leader of its own
// child group at every deeper level, so each rank's participation
// levels form the contiguous range phase code walks.
func (t *Topology) phaseParticipants(l, rank int) []int {
	group := t.levelGroupOf(l, rank)
	if l == t.levels-1 {
		return group
	}
	parts := make([]int, 0, len(group))
	for _, r := range group {
		if t.levelGroupOf(l+1, r)[0] == r {
			parts = append(parts, r)
		}
	}
	return parts
}

// MultiHost reports whether the topology spans more than one host.
func (t *Topology) MultiHost() bool { return len(t.groups) > 1 }

// Flat reports whether every host holds exactly one rank — the layout
// in which a hierarchy has nothing to exploit and Hierarchical
// degenerates to a plain ring over all ranks.
func (t *Topology) Flat() bool { return len(t.groups) == len(t.hosts) }

// Hierarchical reports whether the hierarchy can beat a flat ring:
// more than one host, and at least one host holding several ranks (so
// the intra-host phases actually shed cross-machine traffic).
func (t *Topology) Hierarchical() bool { return t.MultiHost() && !t.Flat() }

// String renders the layout compactly, e.g. "6 ranks / 3 hosts (3+2+1)"
// or, for a structured hierarchy, "8 ranks / 3 levels (2/4/8 groups)".
func (t *Topology) String() string {
	if t.levels > 1 {
		counts := make([]string, t.levels)
		for l := range counts {
			counts[l] = fmt.Sprint(len(t.levelGroups[l]))
		}
		return fmt.Sprintf("%d ranks / %d levels (%s groups)", len(t.hosts), t.levels, strings.Join(counts, "/"))
	}
	sizes := make([]string, len(t.groups))
	for i, g := range t.groups {
		sizes[i] = fmt.Sprint(len(g))
	}
	return fmt.Sprintf("%d ranks / %d hosts (%s)", len(t.hosts), len(t.groups), strings.Join(sizes, "+"))
}
