package comm

import (
	"math"
	"testing"
)

// fuzzWireCodecs returns fresh instances of every wire codec; fresh per
// call so a crashing input reproduces without cross-run scratch state.
func fuzzWireCodecs() []WireCodec {
	return []WireCodec{Float16Codec{}, &OneBitCodec{}, &TopKCodec{}}
}

// FuzzWireCodecDecode throws arbitrary byte frames at every wire
// codec's Decode with an attacker-controlled element count. Decode
// frames arrive off the network from peers, so the decoder must reject
// (not index out of range on) any frame: truncated, oversized, a
// frame from a different codec, or one whose embedded counts and
// indices lie about the payload. It also checks the encode side on the
// same input reinterpreted as floats: frames fit EncodedSize, decode
// cleanly, and never materialize non-finite values from finite input.
func FuzzWireCodecDecode(f *testing.F) {
	// Valid single frames from each codec over a small payload, plus
	// classic malformations, seed the corpus.
	sample := []float32{1, -2.5, 0.125, 3e-9, -42, 0, 7.75, -0.001}
	for _, c := range fuzzWireCodecs() {
		f.Add(c.Encode(nil, sample, nil), uint16(len(sample)))
	}
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0x01}, uint16(4))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint16(8))             // topk: absurd k
	f.Add([]byte{2, 0, 0, 0, 9, 0, 0, 0}, uint16(3))             // topk: index 9 of 3
	f.Add([]byte{0, 0, 0x80, 0x7f, 0, 0, 0x80, 0xff}, uint16(2)) // inf bit patterns

	f.Fuzz(func(t *testing.T, frame []byte, n uint16) {
		if n > 4096 {
			n = 4096
		}
		out := make([]float32, n)
		for _, c := range fuzzWireCodecs() {
			// Arbitrary frames: any outcome but a panic or an
			// out-of-range write is acceptable.
			_ = c.Decode(frame, out)
		}

		// Reinterpret the input as float32 data and check the
		// encode→decode contract on whatever finite values result.
		data := make([]float32, 0, len(frame)/4)
		for i := 0; i+4 <= len(frame) && len(data) < 4096; i += 4 {
			v := math.Float32frombits(uint32(frame[i]) | uint32(frame[i+1])<<8 |
				uint32(frame[i+2])<<16 | uint32(frame[i+3])<<24)
			data = append(data, v)
		}
		allFinite := true
		for _, v := range data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				allFinite = false
				break
			}
		}
		for _, c := range fuzzWireCodecs() {
			enc := c.Encode(nil, data, nil)
			if len(enc) > c.EncodedSize(len(data)) {
				t.Fatalf("%s: frame %d bytes exceeds EncodedSize bound %d for %d elems",
					c.Name(), len(enc), c.EncodedSize(len(data)), len(data))
			}
			dec := make([]float32, len(data))
			if err := c.Decode(enc, dec); err != nil {
				t.Fatalf("%s: decoding own frame: %v", c.Name(), err)
			}
			if allFinite {
				for i, v := range dec {
					if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
						t.Fatalf("%s: finite input produced non-finite dec[%d]=%v (data[%d]=%v)",
							c.Name(), i, v, i, data[i])
					}
				}
			}
		}
	})
}
