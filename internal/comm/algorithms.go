package comm

import (
	"fmt"

	"repro/internal/transport"
)

// Algorithm selects the AllReduce implementation, standing in for the
// algorithm choices inside NCCL/Gloo that the paper discusses
// (ring-based vs tree-based AllReduce, Section 2.3).
type Algorithm int

// Supported AllReduce algorithms.
const (
	// Ring uses reduce-scatter followed by all-gather around a ring:
	// bandwidth-optimal for large tensors, 2(k-1) latency terms.
	Ring Algorithm = iota
	// Tree reduces along a binomial tree to rank 0 and broadcasts back:
	// log(k) latency, good for small tensors.
	Tree
	// Naive has every rank exchange full vectors with every peer and
	// reduce locally — the paper's strawman baseline.
	Naive
	// Hierarchical is the topology-aware three-phase AllReduce:
	// intra-host reduce to per-host leaders, inter-host ring among
	// leaders only, intra-host broadcast back. With a multi-host
	// Topology it sends 1/(ranks-per-host) of the flat ring's volume
	// across the network (Section 6.1's NIC-sharing collapse, answered
	// with Kumar et al.'s multi-ring structure); without one it falls
	// back to Ring.
	Hierarchical
	// DoubleTree runs two complementary in-order binary trees (NCCL
	// 2.4's double binary trees), each carrying half the payload, with
	// every rank an inner node in at most one tree: log(k) depth like
	// Tree but without Tree's half-idle leaves, so it keeps full
	// bandwidth while cutting Ring's 2(k-1) latency terms to
	// O(log k + chunks). See doubletree.go.
	DoubleTree
	// Auto picks per collective from the group's topology and the
	// message size: small messages take the log-depth tree paths
	// (DoubleTree on worlds deep enough to profit, Tree below), large
	// messages on a multi-host topology take Hierarchical, medium
	// messages on deep worlds take DoubleTree's pipelined trees, and
	// everything else takes the bandwidth-optimal Ring.
	Auto
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Ring:
		return "ring"
	case Tree:
		return "tree"
	case Naive:
		return "naive"
	case Hierarchical:
		return "hierarchical"
	case DoubleTree:
		return "doubletree"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Auto's selection cutoffs, in elements. They mirror NCCL's
// size-driven protocol/algorithm switch and the hw cost model's
// crossovers: below autoTreeMaxElems the 2(k-1) ring latency terms
// dominate and Tree's log(k) rounds win; from autoHierarchicalMinElems
// up, a multi-host world is bandwidth-bound on the shared NICs and the
// hierarchy's cross-machine volume reduction pays for its extra
// intra-host hops (hw.HierarchicalAllReduceSeconds models the same
// crossover).
const (
	autoTreeMaxElems         = 4 << 10
	autoHierarchicalMinElems = 64 << 10
	// autoDoubleTreeMinWorld is the world size from which DoubleTree
	// replaces Tree for small payloads: below it the two trees are so
	// shallow that a single binomial tree has the same span with half
	// the frames.
	autoDoubleTreeMinWorld = 4
	// autoDoubleTreeDeepWorld is the world size from which DoubleTree
	// also takes the medium-payload band (above the Tree cutoff, below
	// the Hierarchical one): Ring's 2(world-1) serialized steps dwarf
	// the trees' O(log world + chunks) pipelined depth there.
	autoDoubleTreeDeepWorld = 32
)

// chooseAlgorithm is Auto's per-collective decision. topo may be nil
// (no placement information): then only the latency/bandwidth split
// applies. A topology that does not cover the world is ignored rather
// than trusted.
func chooseAlgorithm(topo *Topology, elems, world int) Algorithm {
	if elems <= autoTreeMaxElems {
		if world >= autoDoubleTreeMinWorld {
			return DoubleTree
		}
		return Tree
	}
	if elems >= autoHierarchicalMinElems {
		if topo != nil && topo.Size() == world && topo.Hierarchical() {
			return Hierarchical
		}
		return Ring
	}
	if world >= autoDoubleTreeDeepWorld {
		return DoubleTree
	}
	return Ring
}

// sendAsync issues m.Send on its own goroutine so a matching Recv can
// proceed concurrently, preventing head-of-line deadlock on large
// messages.
func sendAsync(m transport.Mesh, to int, tag uint64, data []float32) <-chan error {
	errc := make(chan error, 1)
	go func() { errc <- m.Send(to, tag, data) }()
	return errc
}

// chunkBounds splits n elements into k nearly-equal chunks, returning
// the [start, end) of chunk i.
func chunkBounds(n, k, i int) (int, int) {
	base, rem := n/k, n%k
	start := i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return start, start + size
}

// ringAllReduce performs reduce-scatter + all-gather around the ring.
// After it returns, every rank holds bitwise-identical reduced data:
// each chunk's final value is computed on exactly one rank and then
// propagated verbatim, which is what lets DDP guarantee identical
// gradients (and therefore identical models) on every replica.
//
// The two phases are shared with the sharded collectives
// (ReduceScatterV/AllGatherV): a ring AllReduce IS a ring
// reduce-scatter followed by a ring all-gather over the same
// chunkBounds layout, which is what lets ZeRO-style sharding splice an
// optimizer update between the phases and still produce bitwise the
// values a DDP AllReduce would have (see internal/fsdp).
func ringAllReduce(m transport.Mesh, tag uint64, data []float32, op ReduceOp) error {
	k := m.Size()
	if k == 1 {
		return nil
	}
	if err := ringReduceScatterPhase(m, tag, data, op); err != nil {
		return err
	}
	if err := ringAllGatherPhase(m, tag, data); err != nil {
		return err
	}
	if op == Avg {
		scale := 1 / float32(k)
		for i := range data {
			data[i] *= scale
		}
	}
	return nil
}

// ringReduceScatterPhase is the reduce-scatter half of the ring
// AllReduce: k-1 steps around the ring folding chunkBounds chunks in
// cyclic rank order. On return, chunk (rank+1)%k of data holds the
// full (unscaled — Avg folds as Sum) reduction; every other chunk
// holds a partial fold. Chunk c's final value is the left-to-right
// chain starting from rank c's contribution, computed on exactly one
// rank — the determinism every caller's bitwise guarantee reduces to.
func ringReduceScatterPhase(m transport.Mesh, tag uint64, data []float32, op ReduceOp) error {
	k := m.Size()
	rank := m.Rank()
	right := (rank + 1) % k
	left := (rank - 1 + k) % k
	n := len(data)
	for step := 0; step < k-1; step++ {
		sendIdx := (rank - step + k) % k
		recvIdx := (rank - step - 1 + k) % k
		ss, se := chunkBounds(n, k, sendIdx)
		rs, re := chunkBounds(n, k, recvIdx)
		errc := sendAsync(m, right, tag, data[ss:se])
		buf, err := m.Recv(left, tag)
		if err != nil {
			<-errc
			return err
		}
		if err := <-errc; err != nil {
			return err
		}
		if len(buf) != re-rs {
			return fmt.Errorf("comm: ring chunk size mismatch: got %d want %d", len(buf), re-rs)
		}
		reduceInto(data[rs:re], buf, op)
	}
	return nil
}

// ringAllGatherPhase is the all-gather half of the ring AllReduce: on
// entry each rank holds its finished chunk (rank+1)%k (the
// ringReduceScatterPhase postcondition); k-1 verbatim copies around
// the ring later, every rank holds every finished chunk.
func ringAllGatherPhase(m transport.Mesh, tag uint64, data []float32) error {
	k := m.Size()
	rank := m.Rank()
	right := (rank + 1) % k
	left := (rank - 1 + k) % k
	n := len(data)
	for step := 0; step < k-1; step++ {
		sendIdx := (rank + 1 - step + k) % k
		recvIdx := (rank - step + k) % k
		ss, se := chunkBounds(n, k, sendIdx)
		rs, re := chunkBounds(n, k, recvIdx)
		errc := sendAsync(m, right, tag, data[ss:se])
		buf, err := m.Recv(left, tag)
		if err != nil {
			<-errc
			return err
		}
		if err := <-errc; err != nil {
			return err
		}
		copy(data[rs:re], buf)
	}
	return nil
}

// treeAllReduce reduces along a binomial tree into rank 0, then
// broadcasts the result back down the same tree.
func treeAllReduce(m transport.Mesh, tag uint64, data []float32, op ReduceOp) error {
	k := m.Size()
	if k > 1 {
		if err := binomialReduce(m, tag, data, op); err != nil {
			return err
		}
		if err := binomialBroadcast(m, tag, data, 0); err != nil {
			return err
		}
	}
	if op == Avg {
		scale := 1 / float32(k)
		for i := range data {
			data[i] *= scale
		}
	}
	return nil
}

// naiveAllReduce is the paper's strawman: every rank broadcasts its full
// input to all peers and reduces locally. Reduction order is fixed by
// rank so all replicas compute bitwise-identical results.
func naiveAllReduce(m transport.Mesh, tag uint64, data []float32, op ReduceOp) error {
	k := m.Size()
	if k > 1 {
		rank := m.Rank()
		local := append([]float32(nil), data...)
		errcs := make([]<-chan error, 0, k-1)
		for peer := 0; peer < k; peer++ {
			if peer != rank {
				errcs = append(errcs, sendAsync(m, peer, tag, local))
			}
		}
		contributions := make([][]float32, k)
		contributions[rank] = local
		for peer := 0; peer < k; peer++ {
			if peer == rank {
				continue
			}
			buf, err := m.Recv(peer, tag)
			if err != nil {
				return err
			}
			if len(buf) != len(data) {
				return fmt.Errorf("comm: naive allreduce size mismatch from rank %d: got %d want %d", peer, len(buf), len(data))
			}
			contributions[peer] = buf
		}
		for _, errc := range errcs {
			if err := <-errc; err != nil {
				return err
			}
		}
		copy(data, contributions[0])
		for peer := 1; peer < k; peer++ {
			reduceInto(data, contributions[peer], op)
		}
	}
	if op == Avg {
		scale := 1 / float32(k)
		for i := range data {
			data[i] *= scale
		}
	}
	return nil
}

// allGather distributes src from every rank into dst[rank] on all ranks
// using pairwise exchange.
func allGather(m transport.Mesh, tag uint64, dst [][]float32, src []float32) error {
	k := m.Size()
	rank := m.Rank()
	if len(dst) != k {
		return fmt.Errorf("comm: allgather dst has %d slots for world %d", len(dst), k)
	}
	copy(dst[rank], src)
	if k == 1 {
		return nil
	}
	errcs := make([]<-chan error, 0, k-1)
	for peer := 0; peer < k; peer++ {
		if peer != rank {
			errcs = append(errcs, sendAsync(m, peer, tag, src))
		}
	}
	for peer := 0; peer < k; peer++ {
		if peer == rank {
			continue
		}
		buf, err := m.Recv(peer, tag)
		if err != nil {
			return err
		}
		if len(buf) != len(dst[peer]) {
			return fmt.Errorf("comm: allgather size mismatch from rank %d: got %d want %d", peer, len(buf), len(dst[peer]))
		}
		copy(dst[peer], buf)
	}
	for _, errc := range errcs {
		if err := <-errc; err != nil {
			return err
		}
	}
	return nil
}
