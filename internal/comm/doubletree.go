package comm

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/transport"
)

// This file implements the double-binary-tree AllReduce of NCCL 2.4
// (Sanders/Speck/Träff's two-tree broadcast applied to reduction).
//
// A single reduce-then-broadcast tree has log(k) depth — far better
// than Ring's 2(k-1) serialized steps for small payloads — but wastes
// half the aggregate bandwidth: the leaves (half the ranks) never
// forward anything. The fix is two complementary trees, T1 and T2,
// each carrying one half of the payload, constructed so that every
// rank is an inner node in AT MOST one tree. Each rank therefore does
// inner-node work (receive two children, fold, forward) for one half
// of the buffer at most, and leaf work for the other: full-bandwidth
// log-depth AllReduce.
//
// Construction (ranks are 0-indexed; values v = rank+1 are 1-indexed):
// T1 is the in-order binary tree over values 1..k — the root is the
// value with the most trailing zero bits, its subtrees are the in-order
// trees over the values below and above it. Odd values are leaves,
// even values are inner nodes. T2 is the SAME tree with every rank
// shifted down by one (rank r plays value ((r+1) mod k)+1), which
// flips value parity for every rank: T1's leaves are T2's inner nodes
// and vice versa. (For odd k a perfect pairing is impossible — the
// trees have 2*floor(k/2) < k inner slots — and the shift leaves
// exactly one rank, k-1, a leaf in both trees.)
//
// Each tree pipelines its half in doubleTreeChunkElems-element chunks:
// reduce up (receive children's chunk c, fold, forward to parent),
// then broadcast down. Total critical path is O(log k + chunks) hops
// instead of the unpipelined tree's O(log k * chunks).
//
// The transports demand one more invariant: a mesh link is a strict
// FIFO and Recv matches the NEXT frame's tag — there is no
// demultiplexing, a mismatched frame is an error. The two trees run
// concurrently (two goroutines per rank, one tag each) and may share a
// directed link, so frame order on every shared link must be identical
// on both ends. doubleTreeAllReduce guarantees it with per-link gates:
// T1 never waits for T2, and T2 touches a link only after T1's
// statically-known last use of it, so every shared link carries all
// T1 frames, then all T2 frames, on both the send and receive side.

// doubleTreeChunkElems is the pipeline chunk size (elements) of each
// tree half: 8Ki elements = 32KiB frames, small enough to pipeline
// medium payloads through the tree depth, large enough to amortize
// per-frame overhead.
const doubleTreeChunkElems = 8 << 10

// treeRel is one rank's neighbourhood in one tree: its parent (-1 for
// the root) and children (left then right), all as mesh ranks.
type treeRel struct {
	parent   int
	children []int
}

// inner reports whether the rank forwards data in this tree.
func (r treeRel) inner() bool { return len(r.children) > 0 }

// rangeRootValue returns the value in [lo, hi] (1-indexed, lo <= hi)
// with the most trailing zero bits — the in-order subtree root. It is
// unique: between two multiples of 2^b lies a multiple of 2^(b+1).
func rangeRootValue(lo, hi int) int {
	for b := bits.Len(uint(hi)); b >= 0; b-- {
		step := 1 << b
		if m := (lo + step - 1) &^ (step - 1); m <= hi {
			return m
		}
	}
	return lo // unreachable: b=0 always yields lo
}

// buildInOrderTree returns every rank's treeRel in the in-order binary
// tree over ranks 0..k-1 (values 1..k). Children are listed left
// subtree first; both the reduce fold order and the broadcast send
// order follow that fixed order, keeping results bitwise-deterministic.
func buildInOrderTree(k int) []treeRel {
	rel := make([]treeRel, k)
	for i := range rel {
		rel[i].parent = -1
	}
	var build func(lo, hi, parent int)
	build = func(lo, hi, parent int) {
		if lo > hi {
			return
		}
		root := rangeRootValue(lo, hi)
		if parent > 0 {
			rel[root-1].parent = parent - 1
			rel[parent-1].children = append(rel[parent-1].children, root-1)
		}
		build(lo, root-1, root)
		build(root+1, hi, root)
	}
	build(1, k, 0)
	return rel
}

// doubleTreeRels returns the two complementary trees over k ranks: t1
// is the in-order tree on values rank+1, t2 the same tree with ranks
// cyclically shifted down by one, so no rank is an inner node in both.
func doubleTreeRels(k int) (t1, t2 []treeRel) {
	t1 = buildInOrderTree(k)
	t2 = make([]treeRel, k)
	// Value-space rank s plays as mesh rank (s+k-1) mod k in t2.
	shift := func(s int) int { return (s + k - 1) % k }
	for s := range t1 {
		r := shift(s)
		t2[r].parent = -1
		if t1[s].parent >= 0 {
			t2[r].parent = shift(t1[s].parent)
		}
		for _, c := range t1[s].children {
			t2[r].children = append(t2[r].children, shift(c))
		}
	}
	return t1, t2
}

// treeGates serializes the two trees' use of shared directed links.
// The leading tree (T1) closes send[p] once it will never again send
// to p and recv[p] once it will never again receive from p; the
// following tree (T2) waits on the matching gate before each Send/Recv
// involving p. Closing is idempotent and single-goroutine (only the
// leader closes), waiting is cheap once closed.
type treeGates struct {
	send, recv             []chan struct{}
	sendClosed, recvClosed []bool
}

func newTreeGates(k int) *treeGates {
	g := &treeGates{
		send:       make([]chan struct{}, k),
		recv:       make([]chan struct{}, k),
		sendClosed: make([]bool, k),
		recvClosed: make([]bool, k),
	}
	for i := range g.send {
		g.send[i] = make(chan struct{})
		g.recv[i] = make(chan struct{})
	}
	return g
}

func (g *treeGates) doneSend(p int) {
	if !g.sendClosed[p] {
		g.sendClosed[p] = true
		close(g.send[p])
	}
}

func (g *treeGates) doneRecv(p int) {
	if !g.recvClosed[p] {
		g.recvClosed[p] = true
		close(g.recv[p])
	}
}

// releaseUnused opens every gate the leading tree will never need —
// called before any I/O so the following tree only serializes behind
// links the trees actually share.
func (g *treeGates) releaseUnused(rel treeRel) {
	used := func(p int) bool {
		if p == rel.parent {
			return true
		}
		for _, c := range rel.children {
			if c == p {
				return true
			}
		}
		return false
	}
	for p := range g.send {
		if !used(p) {
			g.doneSend(p)
			g.doneRecv(p)
		}
	}
}

// releaseAll opens every remaining gate — the leading tree's exit path
// (deferred), so an error can never leave the follower waiting forever.
func (g *treeGates) releaseAll() {
	for p := range g.send {
		g.doneSend(p)
		g.doneRecv(p)
	}
}

// treeHalfAllReduce reduces data up rel's tree and broadcasts the
// result back down, pipelined chunk by chunk. When lead is true it
// closes gates as it finishes with each link; otherwise it waits on
// them before touching a link.
func treeHalfAllReduce(m transport.Mesh, tag uint64, data []float32, op ReduceOp, rel treeRel, gates *treeGates, lead bool) error {
	n := len(data)
	chunks := (n + doubleTreeChunkElems - 1) / doubleTreeChunkElems

	waitSend := func(p int) {
		if !lead {
			<-gates.send[p]
		}
	}
	waitRecv := func(p int) {
		if !lead {
			<-gates.recv[p]
		}
	}
	sendDone := func(p int) {
		if lead {
			gates.doneSend(p)
		}
	}
	recvDone := func(p int) {
		if lead {
			gates.doneRecv(p)
		}
	}

	// Reduce up: per chunk, fold the children's contributions (left
	// then right — fixed order for determinism), forward to the parent.
	for c := 0; c < chunks; c++ {
		lo := c * doubleTreeChunkElems
		hi := min(lo+doubleTreeChunkElems, n)
		for _, ch := range rel.children {
			waitRecv(ch)
			buf, err := m.Recv(ch, tag)
			if err != nil {
				return err
			}
			if len(buf) != hi-lo {
				return fmt.Errorf("comm: double-tree chunk size mismatch from rank %d: got %d want %d", ch, len(buf), hi-lo)
			}
			reduceInto(data[lo:hi], buf, op)
		}
		if rel.parent >= 0 {
			waitSend(rel.parent)
			if err := m.Send(rel.parent, tag, data[lo:hi]); err != nil {
				return err
			}
		}
	}
	for _, ch := range rel.children {
		recvDone(ch)
	}
	if rel.parent >= 0 {
		sendDone(rel.parent)
	}

	// Broadcast down: per chunk, receive the finished bytes from the
	// parent and forward them verbatim — every rank ends bitwise equal.
	for c := 0; c < chunks; c++ {
		lo := c * doubleTreeChunkElems
		hi := min(lo+doubleTreeChunkElems, n)
		if rel.parent >= 0 {
			waitRecv(rel.parent)
			buf, err := m.Recv(rel.parent, tag)
			if err != nil {
				return err
			}
			if len(buf) != hi-lo {
				return fmt.Errorf("comm: double-tree broadcast size mismatch: got %d want %d", len(buf), hi-lo)
			}
			copy(data[lo:hi], buf)
		}
		for _, ch := range rel.children {
			waitSend(ch)
			if err := m.Send(ch, tag, data[lo:hi]); err != nil {
				return err
			}
		}
	}
	if rel.parent >= 0 {
		recvDone(rel.parent)
	}
	for _, ch := range rel.children {
		sendDone(ch)
	}
	return nil
}

// doubleTreeAllReduce is the double-binary-tree AllReduce: tree T1
// reduces and broadcasts data's first half under tag1 while T2 handles
// the second half under tag2, concurrently. The caller must have
// reserved BOTH tags (see meshGroup.submitN). Every rank finishes with
// bitwise-identical data: each half is fully reduced at its tree's
// root and propagated verbatim.
//
// Deadlock-freedom: T1 never waits on a gate, and a lone tree's
// pipelined schedule only blocks on peers that are guaranteed to
// progress (children's sends precede the parent's receive in chunk
// order on strict-FIFO links). T2 additionally waits on gates, all of
// which T1 closes in bounded time — on success as it retires links, on
// failure via the deferred releaseAll.
func doubleTreeAllReduce(m transport.Mesh, tag1, tag2 uint64, data []float32, op ReduceOp) error {
	k := m.Size()
	if k == 1 {
		return nil
	}
	// Avg folds as Sum; each rank applies the final 1/world scale to
	// its bitwise-identical copy.
	foldOp := op
	if op == Avg {
		foldOp = Sum
	}
	t1, t2 := doubleTreeRels(k)
	rank := m.Rank()
	mid := len(data) / 2

	gates := newTreeGates(k)
	var wg sync.WaitGroup
	var err1 error
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer gates.releaseAll()
		gates.releaseUnused(t1[rank])
		err1 = treeHalfAllReduce(m, tag1, data[:mid], foldOp, t1[rank], gates, true)
	}()
	err2 := treeHalfAllReduce(m, tag2, data[mid:], foldOp, t2[rank], gates, false)
	wg.Wait()
	if err1 != nil {
		return err1
	}
	if err2 != nil {
		return err2
	}

	if op == Avg {
		scale := 1 / float32(k)
		for i := range data {
			data[i] *= scale
		}
	}
	return nil
}
