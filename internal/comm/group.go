package comm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/store"
	"repro/internal/transport"
)

// Options configures a ProcessGroup.
type Options struct {
	// Algorithm selects the AllReduce implementation (default Ring).
	Algorithm Algorithm
	// Topology maps each rank to its host, for the topology-aware
	// algorithms (Hierarchical, Auto). When nil, the group derives one
	// from the transport if it knows peer placement (TCP meshes
	// implement transport.HostLister); an explicit Topology always
	// wins, which is how the elastic builders propagate the rendezvous
	// round's host layout and how tests lay out simulated hosts over
	// in-proc or loopback meshes.
	Topology *Topology
	// QueueDepth bounds the number of queued-but-unstarted collectives
	// (default 1024). DDP launches at most one AllReduce per bucket per
	// iteration, so the default is generous.
	QueueDepth int
}

func (o Options) withDefaults() Options {
	if o.QueueDepth == 0 {
		o.QueueDepth = 1024
	}
	return o
}

// meshGroup is a ProcessGroup over a point-to-point Mesh. A dedicated
// worker goroutine executes collectives in submission order — the
// analogue of the dedicated NCCL communication stream in Section 3.3.
type meshGroup struct {
	mesh transport.Mesh
	opts Options
	// topo is the resolved placement map (explicit Options.Topology, or
	// the transport's own, or nil when neither knows); immutable.
	topo *Topology

	mu      sync.Mutex
	nextTag uint64
	closed  bool
	ops     chan func()
	done    chan struct{}
	// sending counts submissions between tag reservation and the ops
	// enqueue; Close/Abort wait for it so the channel never closes
	// under an in-flight send even when the queue is full.
	sending sync.WaitGroup
}

// NewGroup wraps a mesh in a ProcessGroup.
func NewGroup(mesh transport.Mesh, opts Options) ProcessGroup {
	opts = opts.withDefaults()
	g := &meshGroup{
		mesh: mesh,
		opts: opts,
		topo: resolveTopology(mesh, opts),
		ops:  make(chan func(), opts.QueueDepth),
		done: make(chan struct{}),
	}
	go g.worker()
	return g
}

// resolveTopology picks the group's placement map: an explicit
// Options.Topology wins, else a transport that knows peer placement
// (TCP meshes) supplies one, else nil (flat-world algorithms only).
func resolveTopology(mesh transport.Mesh, opts Options) *Topology {
	if opts.Topology != nil {
		return opts.Topology
	}
	if hl, ok := mesh.(transport.HostLister); ok {
		if hosts := hl.Hosts(); len(hosts) == mesh.Size() {
			return NewTopology(hosts)
		}
	}
	return nil
}

// NewInProcGroups creates `world` fully-connected in-process groups, one
// per goroutine rank. This is the fixture single-process tests and
// examples use.
func NewInProcGroups(world int, opts Options) []ProcessGroup {
	meshes := transport.NewInProcMeshes(world)
	groups := make([]ProcessGroup, world)
	for r := range groups {
		groups[r] = NewGroup(meshes[r], opts)
	}
	return groups
}

// NewTCPGroup creates this process's member of a TCP-connected group,
// rendezvousing through st. Name distinguishes independent groups that
// share a store (e.g. round-robin sub-groups).
func NewTCPGroup(rank, world int, st store.Store, name string, opts Options) (ProcessGroup, error) {
	return NewTCPGroupCancel(rank, world, st, name, opts, nil)
}

// NewTCPGroupCancel is NewTCPGroup with an abort handle for the mesh
// construction phase: closing cancel releases a rank blocked in
// rendezvous/dial/accept (because a peer died between seal and build)
// immediately instead of stalling it until the store timeout. See
// transport.NewTCPMeshCancel.
func NewTCPGroupCancel(rank, world int, st store.Store, name string, opts Options, cancel <-chan struct{}) (ProcessGroup, error) {
	mesh, err := transport.NewTCPMeshCancel(rank, world, st, "pg/"+name, cancel)
	if err != nil {
		return nil, fmt.Errorf("comm: building group %q: %w", name, err)
	}
	return NewGroup(mesh, opts), nil
}

func (g *meshGroup) worker() {
	for fn := range g.ops {
		fn()
	}
	close(g.done)
}

func (g *meshGroup) Rank() int { return g.mesh.Rank() }
func (g *meshGroup) Size() int { return g.mesh.Size() }

// submit enqueues a collective and returns its async handle. The tag
// counter advances identically on every rank because all ranks submit
// the same collectives in the same order (the paper's ProcessGroup
// contract); the transports verify it.
//
// The sender registers in g.sending under the mutex — before `closed`
// can flip — and enqueues outside it, so a full ops queue never makes
// a submission block while holding the lock (which would deadlock the
// Abort elastic recovery depends on). Close/Abort set `closed` first,
// then wait out registered senders before closing the channel, so no
// send can hit a closed channel.
func (g *meshGroup) submit(run func(tag uint64) error) Work {
	return g.submitN(1, run)
}

// submitN is submit reserving `tags` consecutive tags — run receives
// the first and owns [tag, tag+tags). DoubleTree needs two (one per
// concurrent tree); every rank reserves the same count because all
// ranks resolve the same algorithm for the same collective.
func (g *meshGroup) submitN(tags int, run func(tag uint64) error) Work {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return CompletedWork(ErrClosed)
	}
	tag := g.nextTag
	g.nextTag += uint64(tags)
	w := newPendingWork()
	g.sending.Add(1)
	g.mu.Unlock()

	defer g.sending.Done()
	g.ops <- func() { w.finish(run(tag)) }
	return w
}

func (g *meshGroup) AllReduce(data []float32, op ReduceOp) Work {
	algo := g.opts.Algorithm
	if algo == Auto {
		// Resolved at submission so every rank — submitting the same
		// collectives in the same order with equally-sized buffers (the
		// ProcessGroup contract) — picks the same algorithm.
		algo = chooseAlgorithm(g.topo, len(data), g.mesh.Size())
	}
	return g.submitN(algoTags(algo), func(tag uint64) error {
		start := time.Now()
		var err error
		switch algo {
		case Ring:
			err = ringAllReduce(g.mesh, tag, data, op)
		case Tree:
			err = treeAllReduce(g.mesh, tag, data, op)
		case Naive:
			err = naiveAllReduce(g.mesh, tag, data, op)
		case Hierarchical:
			_, err = hierarchicalAllReduce(g.mesh, tag, data, op, g.topo, nil, nil)
		case DoubleTree:
			err = doubleTreeAllReduce(g.mesh, tag, tag+1, data, op)
		default:
			err = fmt.Errorf("comm: unknown algorithm %v", g.opts.Algorithm)
		}
		observeAllReduce(algo.String(), len(data), start, err)
		return err
	})
}

// algoTags returns how many transport tags one AllReduce under algo
// consumes: DoubleTree's two concurrent trees need one each.
func algoTags(algo Algorithm) int {
	if algo == DoubleTree {
		return 2
	}
	return 1
}

func (g *meshGroup) Broadcast(data []float32, root int) Work {
	if root < 0 || root >= g.Size() {
		return CompletedWork(fmt.Errorf("comm: broadcast root %d out of range", root))
	}
	return g.submit(func(tag uint64) error {
		return binomialBroadcast(g.mesh, tag, data, root)
	})
}

func (g *meshGroup) AllGather(dst [][]float32, src []float32) Work {
	world := g.Size()
	return g.submit(func(tag uint64) error {
		start := time.Now()
		err := allGather(g.mesh, tag, dst, src)
		observeCollective("all_gather", world*len(src), start, err)
		return err
	})
}

func (g *meshGroup) Barrier() Work {
	return g.submit(func(tag uint64) error {
		one := []float32{1}
		return ringAllReduce(g.mesh, tag, one, Sum)
	})
}

func (g *meshGroup) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	g.sending.Wait() // the worker keeps draining, so blocked senders finish
	close(g.ops)
	<-g.done
	return g.mesh.Close()
}

// Abort cancels the group: the mesh is closed FIRST, so collectives
// blocked on a dead peer error out instead of completing, then the
// worker drains. This is the teardown path elastic recovery uses when a
// rank vanishes mid-collective — a plain Close would wait forever for
// an AllReduce whose peer will never answer (the paper's Section 7
// deadlock scenario).
func (g *meshGroup) Abort() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	err := abortMesh(g.mesh) // unblocks in-flight Send/Recv with errors
	g.sending.Wait()         // queued ops now error fast, freeing blocked senders
	close(g.ops)
	<-g.done
	return err
}

// abortMesh cancels a mesh's in-flight operations, preferring the
// transport's dedicated Abort (TCP: deadline + close, deterministic
// ErrAborted errors) over a plain Close.
func abortMesh(m transport.Mesh) error {
	if a, ok := m.(transport.Aborter); ok {
		return a.Abort()
	}
	return m.Close()
}

// Aborter is implemented by ProcessGroups that can cancel in-flight
// collectives (meshGroup). AbortGroup prefers it over Close.
type Aborter interface {
	Abort() error
}

// AbortGroup tears pg down via Abort when available, falling back to
// Close. Use it when peers may no longer be responsive.
func AbortGroup(pg ProcessGroup) error {
	if a, ok := pg.(Aborter); ok {
		return a.Abort()
	}
	return pg.Close()
}

var _ ProcessGroup = (*meshGroup)(nil)
var _ Aborter = (*meshGroup)(nil)
