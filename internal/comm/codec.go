package comm

import "math"

// Codec models the gradient compression direction of Section 6.2.3:
// gradients are projected into a lower-precision representation before
// communication and reconstructed afterwards. In this pure-Go
// reproduction the accuracy effect is faithful (values are actually
// quantized); the byte-volume effect shows up in the simulator, which
// scales communication cost by CompressionRatio.
type Codec interface {
	// Name identifies the codec in benchmark output.
	Name() string
	// CompressionRatio is original bytes / compressed bytes.
	CompressionRatio() float64
	// Quantize applies the round trip through the compressed
	// representation to data in place, before AllReduce.
	Quantize(data []float32)
}

// Float16Codec rounds values through IEEE half precision (2x smaller).
type Float16Codec struct{}

// Name implements Codec.
func (Float16Codec) Name() string { return "fp16" }

// CompressionRatio implements Codec.
func (Float16Codec) CompressionRatio() float64 { return 2 }

// Quantize rounds every element to the nearest representable float16.
func (Float16Codec) Quantize(data []float32) {
	for i, v := range data {
		data[i] = Float16Round(v)
	}
}

// OneBitCodec keeps only the sign of each gradient element, scaled by
// the mean magnitude, with error feedback carrying the quantization
// residual into the next iteration (Seide et al., the 1-bit SGD scheme
// the paper cites). One codec instance must be used per bucket so the
// residual lines up.
type OneBitCodec struct {
	residual []float32
}

// Name implements Codec.
func (c *OneBitCodec) Name() string { return "1bit" }

// CompressionRatio implements Codec.
func (c *OneBitCodec) CompressionRatio() float64 { return 32 }

// Quantize replaces data with sign(data+residual) * mean|data+residual|
// and stores the quantization error for the next call.
func (c *OneBitCodec) Quantize(data []float32) {
	if len(c.residual) != len(data) {
		c.residual = make([]float32, len(data))
	}
	var meanAbs float64
	for i := range data {
		data[i] += c.residual[i]
		meanAbs += math.Abs(float64(data[i]))
	}
	scale := float32(meanAbs / float64(len(data)))
	for i, v := range data {
		q := scale
		if v < 0 {
			q = -scale
		}
		c.residual[i] = v - q
		data[i] = q
	}
}

// Float16Round converts f to IEEE 754 half precision and back,
// round-to-nearest-even, saturating to ±Inf outside the range.
func Float16Round(f float32) float32 {
	return float16ToFloat32(float32ToFloat16(f))
}

// float32ToFloat16 converts to binary16 representation bits.
func float32ToFloat16(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case exp <= 0:
		if exp < -10 {
			return sign // underflow to zero
		}
		// Subnormal: shift mantissa (with implicit leading 1).
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := (mant + half) >> shift
		return sign | uint16(rounded)
	case exp >= 0x1f:
		if exp == 128-127+15 && mant != 0 {
			return sign | 0x7e00 // NaN
		}
		return sign | 0x7c00 // Inf / overflow
	default:
		// Round mantissa from 23 to 10 bits, to nearest even.
		rounded := mant + 0xfff + ((mant >> 13) & 1)
		if rounded&0x800000 != 0 {
			rounded = 0
			exp++
			if exp >= 0x1f {
				return sign | 0x7c00
			}
		}
		return sign | uint16(exp)<<10 | uint16(rounded>>13)
	}
}

// float16ToFloat32 expands binary16 bits to float32.
func float16ToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}
