package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Codec models the gradient compression direction of Section 6.2.3:
// gradients are projected into a lower-precision representation before
// communication and reconstructed afterwards. Quantize applies the
// accuracy effect in place (values are actually degraded); codecs that
// additionally implement WireCodec produce the real byte
// representation, which CompressedAllReduce ships over the transports'
// byte lanes so the volume effect is real too.
type Codec interface {
	// Name identifies the codec in benchmark output.
	Name() string
	// CompressionRatio is original bytes / compressed bytes.
	CompressionRatio() float64
	// Quantize applies the round trip through the compressed
	// representation to data in place, before AllReduce.
	Quantize(data []float32)
}

// WireCodec is a Codec that can materialize the compressed byte
// representation itself — the lossy projection AND the wire format.
// Encode/Decode round-tripping defines the quantization: for finite
// in-range inputs, Quantize(data) is equivalent to Decode(Encode(data)).
// (For non-finite inputs Encode applies the drop guard — see
// DroppedNonFinite — and fp16's Encode saturates out-of-range values to
// ±65504 where the legacy Quantize, predating error feedback,
// saturates to ±Inf.)
//
// Error feedback is caller-owned: when Encode receives a non-nil
// residual (same length as data), the value quantized for element i is
// data[i]+residual[i] and residual[i] is replaced with the new
// quantization error, so the error accumulates across iterations
// instead of being lost (Seide et al.'s 1-bit SGD scheme). DDP keys
// these residuals by parameter identity so they survive bucket
// rebuilds and elastic reconfigurations.
//
// Encode and Decode must not mutate receiver state: one codec instance
// may serve concurrent collectives (round-robin groups run one worker
// per sub-group). All state rides in the arguments.
type WireCodec interface {
	Codec
	// EncodedSize returns an upper bound on the bytes Encode produces
	// for n elements (exact for fixed-rate codecs; adaptive codecs like
	// top-k may produce less).
	EncodedSize(n int) int
	// Encode appends the compressed representation of data to dst and
	// returns the extended slice. residual is nil (no error feedback)
	// or a slice of len(data) updated in place. data itself is not
	// modified. Encoding zero elements appends nothing.
	Encode(dst []byte, data, residual []float32) []byte
	// Decode expands one Encode frame into out, whose length must equal
	// the element count that was encoded.
	Decode(buf []byte, out []float32) error
}

// nonFiniteDropped counts gradient elements dropped because they were
// Inf/NaN at encode time (see DroppedNonFinite).
var nonFiniteDropped atomic.Uint64

// DroppedNonFinite reports how many non-finite gradient elements the
// codecs have dropped process-wide. A non-finite element would poison
// scale computations (1-bit's mean magnitude) and, under error
// feedback, the residual — forever, since NaN never decays. Instead
// the codecs treat the element as zero: it is excluded from scale
// computations, transmitted as zero (the zero sign, for 1-bit), its
// poisoned residual is discarded, and this counter is bumped so the
// event is observable rather than silently corrupting state.
func DroppedNonFinite() uint64 { return nonFiniteDropped.Load() }

// efValue returns the value to quantize for element i — data[i] plus
// its residual under error feedback — and whether it is finite. A
// non-finite value is dropped: the caller transmits 0, the residual is
// zeroed, and the process-wide counter is bumped.
func efValue(data, residual []float32, i int) (float32, bool) {
	v := data[i]
	if residual != nil {
		v += residual[i]
	}
	if f64 := float64(v); math.IsNaN(f64) || math.IsInf(f64, 0) {
		if residual != nil {
			residual[i] = 0
		}
		nonFiniteDropped.Add(1)
		mDroppedNonFinite.Inc()
		return 0, false
	}
	return v, true
}

// setResidual records the quantization error v-q for element i when
// error feedback is active.
func setResidual(residual []float32, i int, v, q float32) {
	if residual != nil {
		residual[i] = v - q
	}
}

// Float16Codec rounds values through IEEE half precision (2x smaller).
// On the wire each element travels as its binary16 bits.
type Float16Codec struct{}

// Name implements Codec.
func (Float16Codec) Name() string { return "fp16" }

// CompressionRatio implements Codec.
func (Float16Codec) CompressionRatio() float64 { return 2 }

// Quantize rounds every element to the nearest representable float16.
func (Float16Codec) Quantize(data []float32) {
	for i, v := range data {
		data[i] = Float16Round(v)
	}
}

// EncodedSize implements WireCodec: two bytes per element.
func (Float16Codec) EncodedSize(n int) int { return 2 * n }

// maxFloat16 is the largest finite half-precision value. Encode
// saturates to it instead of ±Inf: a finite-but-out-of-range element
// must stay finite on the wire (an Inf frame element turns the whole
// reduced sum Inf) and must leave a finite residual — v-Inf is -Inf,
// which would poison the accumulator exactly like the non-finite
// inputs the drop guard exists for.
const maxFloat16 = 65504

// Encode implements WireCodec: each element's binary16 bits,
// little-endian, saturating to ±maxFloat16. With error feedback the
// rounding (and saturation) error accumulates in residual instead of
// being lost.
func (Float16Codec) Encode(dst []byte, data, residual []float32) []byte {
	for i := range data {
		v, ok := efValue(data, residual, i)
		var h uint16
		if ok {
			q := v
			switch {
			case q > maxFloat16:
				q = maxFloat16
			case q < -maxFloat16:
				q = -maxFloat16
			}
			h = float32ToFloat16(q)
			// The residual is measured against the ORIGINAL value, so
			// saturation error (v - 65504) is carried forward like any
			// other quantization error, not discarded.
			setResidual(residual, i, v, float16ToFloat32(h))
		}
		dst = binary.LittleEndian.AppendUint16(dst, h)
	}
	return dst
}

// Decode implements WireCodec.
func (Float16Codec) Decode(buf []byte, out []float32) error {
	if len(buf) != 2*len(out) {
		return fmt.Errorf("comm: fp16 frame is %d bytes for %d elements", len(buf), len(out))
	}
	for i := range out {
		out[i] = float16ToFloat32(binary.LittleEndian.Uint16(buf[2*i:]))
	}
	return nil
}

// OneBitCodec keeps only the sign of each gradient element, scaled by
// the mean magnitude, with error feedback carrying the quantization
// residual into the next iteration (Seide et al., the 1-bit SGD scheme
// the paper cites). On the wire a frame is a 4-byte scale followed by a
// sign bitmap (~32x smaller).
//
// Quantize uses a codec-internal residual for standalone use; DDP and
// CompressedAllReduce instead pass a caller-owned residual to Encode,
// keyed by parameter identity, so the accumulated error survives
// bucket rebuilds and process-group swaps.
type OneBitCodec struct {
	residual []float32
	scratch  []byte
}

// Name implements Codec.
func (c *OneBitCodec) Name() string { return "1bit" }

// CompressionRatio implements Codec.
func (c *OneBitCodec) CompressionRatio() float64 { return 32 }

// Quantize replaces data with sign(data+residual) * mean|data+residual|
// and stores the quantization error for the next call.
func (c *OneBitCodec) Quantize(data []float32) {
	if len(data) == 0 {
		return
	}
	if len(c.residual) != len(data) {
		c.residual = make([]float32, len(data))
	}
	c.scratch = c.Encode(c.scratch[:0], data, c.residual)
	// A frame we just produced always decodes.
	_ = c.Decode(c.scratch, data)
}

// EncodedSize implements WireCodec: a 4-byte scale plus one bit per
// element.
func (c *OneBitCodec) EncodedSize(n int) int {
	if n == 0 {
		return 0
	}
	return 4 + (n+7)/8
}

// Encode implements WireCodec: [scale float32][sign bitmap], bit set =
// negative. The scale is the mean magnitude over the finite values;
// non-finite elements are dropped (treated as zero: excluded from the
// scale, transmitted as the zero sign) instead of making the scale —
// and every element of the frame — NaN.
func (c *OneBitCodec) Encode(dst []byte, data, residual []float32) []byte {
	n := len(data)
	if n == 0 {
		return dst
	}
	start := len(dst)
	dst = append(dst, make([]byte, c.EncodedSize(n))...)
	// Materialize the combined values once so the scale pass and the
	// sign pass agree on exactly what each element is — recomputing
	// data[i]+residual[i] after efValue sanitized the residual would
	// see a DIFFERENT (possibly huge-but-finite) value for a dropped
	// element and leak it into the residual.
	vals := make([]float32, n)
	var meanAbs float64
	finite := 0
	for i := 0; i < n; i++ {
		v, ok := efValue(data, residual, i)
		vals[i] = v // 0 when dropped
		if ok {
			meanAbs += math.Abs(float64(v))
			finite++
		}
	}
	var scale float32
	if finite > 0 {
		scale = float32(meanAbs / float64(finite))
	}
	binary.LittleEndian.PutUint32(dst[start:], math.Float32bits(scale))
	bitmap := dst[start+4:]
	for i, v := range vals {
		q := scale
		if v < 0 {
			q = -scale
			bitmap[i/8] |= 1 << (i % 8)
		}
		setResidual(residual, i, v, q)
	}
	return dst
}

// Decode implements WireCodec.
func (c *OneBitCodec) Decode(buf []byte, out []float32) error {
	n := len(out)
	if len(buf) != c.EncodedSize(n) {
		return fmt.Errorf("comm: 1bit frame is %d bytes for %d elements", len(buf), n)
	}
	if n == 0 {
		return nil
	}
	scale := math.Float32frombits(binary.LittleEndian.Uint32(buf))
	bitmap := buf[4:]
	for i := range out {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			out[i] = -scale
		} else {
			out[i] = scale
		}
	}
	return nil
}

// DefaultTopKFraction is the kept fraction TopKCodec uses when K is
// zero: the top 10% of elements by magnitude, a common operating point
// in the gradient sparsification literature.
const DefaultTopKFraction = 0.1

// TopKCodec transmits only the largest-magnitude fraction of the
// elements as (index, value) pairs; everything else is carried forward
// by error feedback (Quantize's internal residual, or the caller-owned
// residual handed to Encode). Values selected are transmitted exactly,
// so with error feedback every gradient element eventually arrives —
// just spread over iterations.
type TopKCodec struct {
	// K is the kept fraction in (0, 1]; 0 selects DefaultTopKFraction.
	K float64

	residual []float32
	scratch  []byte
}

// fraction returns the effective kept fraction.
func (c *TopKCodec) fraction() float64 {
	if c.K <= 0 || c.K > 1 {
		return DefaultTopKFraction
	}
	return c.K
}

// kept returns how many of n elements a frame carries.
func (c *TopKCodec) kept(n int) int {
	if n == 0 {
		return 0
	}
	k := int(math.Ceil(c.fraction() * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Name implements Codec.
func (c *TopKCodec) Name() string { return "topk" }

// CompressionRatio implements Codec: each kept element costs 8 bytes
// (index + value) against 4 bytes for every dense element, so the
// asymptotic ratio is 1/(2K).
func (c *TopKCodec) CompressionRatio() float64 { return 1 / (2 * c.fraction()) }

// Quantize keeps the top-K fraction in place, zeroing the rest into an
// internal error-feedback residual.
func (c *TopKCodec) Quantize(data []float32) {
	if len(data) == 0 {
		return
	}
	if len(c.residual) != len(data) {
		c.residual = make([]float32, len(data))
	}
	c.scratch = c.Encode(c.scratch[:0], data, c.residual)
	_ = c.Decode(c.scratch, data)
}

// EncodedSize implements WireCodec: a 4-byte count plus 8 bytes per
// kept element.
func (c *TopKCodec) EncodedSize(n int) int {
	if n == 0 {
		return 0
	}
	return 4 + 8*c.kept(n)
}

// Encode implements WireCodec:
// [count uint32][count x index uint32][count x value float32].
// Selection is by descending magnitude with ascending-index
// tie-breaking — a deterministic total order, found by quickselect in
// O(n) expected time (this runs per bucket per iteration; a full sort
// of multi-million-element buckets would eat the latency the
// compression buys). Indices are emitted ascending.
func (c *TopKCodec) Encode(dst []byte, data, residual []float32) []byte {
	n := len(data)
	if n == 0 {
		return dst
	}
	// Scratch comes from pools, not instance fields: Encode must stay
	// goroutine-safe (one codec serves concurrent collectives), and a
	// 25MB bucket would otherwise allocate ~12n bytes of garbage per
	// call on the hot path.
	vp := topkValsPool.Get().(*[]float32)
	vals := growFloat32(*vp, n)
	defer func() { *vp = vals; topkValsPool.Put(vp) }()
	for i := range data {
		vals[i], _ = efValue(data, residual, i)
	}
	ip := topkIdxPool.Get().(*[]int)
	idx := growInt(*ip, n)
	defer func() { *ip = idx; topkIdxPool.Put(ip) }()
	for i := range idx {
		idx[i] = i
	}
	k := c.kept(n)
	selectTopK(idx, vals, k)
	sel := idx[:k]
	sort.Ints(sel)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(k))
	for _, i := range sel {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(i))
	}
	for _, i := range sel {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(vals[i]))
	}
	if residual != nil {
		// sel is ascending: one two-pointer pass splits transmitted
		// (residual zeroed — the value went out exactly) from carried.
		s := 0
		for i := range vals {
			if s < len(sel) && sel[s] == i {
				residual[i] = 0
				s++
			} else {
				residual[i] = vals[i]
			}
		}
	}
	return dst
}

// topkValsPool / topkIdxPool recycle Encode's selection scratch across
// calls and goroutines.
var (
	topkValsPool = sync.Pool{New: func() any { return new([]float32) }}
	topkIdxPool  = sync.Pool{New: func() any { return new([]int) }}
)

// growFloat32 returns buf resized to n elements, reallocating only when
// capacity is insufficient.
func growFloat32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// growInt is growFloat32 for int slices.
func growInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// topKRanks reports whether element a outranks element b in top-k
// selection: greater magnitude first, ascending index on ties. A total
// order, so the selected set is deterministic.
func topKRanks(vals []float32, a, b int) bool {
	ma := math.Abs(float64(vals[a]))
	mb := math.Abs(float64(vals[b]))
	if ma != mb {
		return ma > mb
	}
	return a < b
}

// selectTopK partially orders idx so its first k entries are exactly
// the top-k elements under topKRanks (in unspecified internal order) —
// Hoare-partition quickselect with a middle pivot, O(n) expected.
func selectTopK(idx []int, vals []float32, k int) {
	lo, hi := 0, len(idx)
	for hi-lo > 1 && k > lo && k < hi {
		pivot := idx[lo+(hi-lo)/2]
		i, j := lo, hi-1
		for i <= j {
			for topKRanks(vals, idx[i], pivot) {
				i++
			}
			for topKRanks(vals, pivot, idx[j]) {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		// idx[lo:j+1] all rank >= pivot's side, idx[i:hi] all rank
		// after; recurse into whichever span still straddles k.
		if k <= j {
			hi = j + 1
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

// Decode implements WireCodec: zero the output and scatter the pairs.
func (c *TopKCodec) Decode(buf []byte, out []float32) error {
	n := len(out)
	if n == 0 {
		if len(buf) != 0 {
			return fmt.Errorf("comm: topk frame is %d bytes for 0 elements", len(buf))
		}
		return nil
	}
	if len(buf) < 4 {
		return fmt.Errorf("comm: topk frame truncated (%d bytes)", len(buf))
	}
	k := int(binary.LittleEndian.Uint32(buf))
	if k < 0 || k > n || len(buf) != 4+8*k {
		return fmt.Errorf("comm: topk frame claims %d pairs in %d bytes for %d elements", k, len(buf), n)
	}
	for i := range out {
		out[i] = 0
	}
	idxs := buf[4:]
	valBase := 4 + 4*k
	for j := 0; j < k; j++ {
		i := int(binary.LittleEndian.Uint32(idxs[4*j:]))
		if i >= n {
			return fmt.Errorf("comm: topk index %d out of range [0,%d)", i, n)
		}
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[valBase+4*j:]))
	}
	return nil
}

// Float16Round converts f to IEEE 754 half precision and back,
// round-to-nearest-even, saturating to ±Inf outside the range.
func Float16Round(f float32) float32 {
	return float16ToFloat32(float32ToFloat16(f))
}

// float32ToFloat16 converts to binary16 representation bits.
func float32ToFloat16(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case exp <= 0:
		if exp < -10 {
			return sign // underflow to zero
		}
		// Subnormal: shift mantissa (with implicit leading 1).
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := (mant + half) >> shift
		return sign | uint16(rounded)
	case exp >= 0x1f:
		if exp == 128-127+15 && mant != 0 {
			return sign | 0x7e00 // NaN
		}
		return sign | 0x7c00 // Inf / overflow
	default:
		// Round mantissa from 23 to 10 bits, to nearest even.
		rounded := mant + 0xfff + ((mant >> 13) & 1)
		if rounded&0x800000 != 0 {
			rounded = 0
			exp++
			if exp >= 0x1f {
				return sign | 0x7c00
			}
		}
		return sign | uint16(exp)<<10 | uint16(rounded>>13)
	}
}

// float16ToFloat32 expands binary16 bits to float32.
func float16ToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

var (
	_ WireCodec = Float16Codec{}
	_ WireCodec = (*OneBitCodec)(nil)
	_ WireCodec = (*TopKCodec)(nil)
)
