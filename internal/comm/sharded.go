package comm

import (
	"fmt"
	"time"

	"repro/internal/transport"
)

// The sharded collectives are the in-place, uneven-chunk primitives
// ZeRO-style data parallelism (internal/fsdp) builds on. They are the
// two halves of the ring AllReduce exposed separately: ReduceScatterV
// is the ring's reduce-scatter phase (plus one rotation so rank owns
// chunk rank), AllGatherV its all-gather phase. Because they run the
// SAME chunking (ChunkBounds) and the same fold schedule as
// ringAllReduce, a reduce-scatter + local-update + all-gather sequence
// produces bitwise the parameter values a DDP AllReduce + full local
// update would have — the property the DDP-vs-ZeRO agreement suites
// assert. The equal-chunk ReduceScatter in extended.go cannot offer
// this: its contiguous padded layout chunks differently.

// ChunkBounds is the shard layout of the sharded collectives: n
// elements over k ranks split into nearly-equal chunks with the
// remainder spread over the lowest-indexed chunks; it returns the
// [start, end) of chunk i. Rank r owns chunk r. This is exactly the
// chunking the ring AllReduce reduces over, exported so sharded
// callers (fsdp, tests) can address their shard.
func ChunkBounds(n, k, i int) (int, int) { return chunkBounds(n, k, i) }

// ShardedGroup is the optional interface for the in-place sharded
// collectives. Mesh-backed groups implement it; capability-probe with
// a type assertion like for ExtendedGroup.
type ShardedGroup interface {
	ProcessGroup
	// ReduceScatterV reduces data in place across ranks over the
	// ChunkBounds layout: after Wait, data[ChunkBounds(len, Size, Rank)]
	// holds the full reduction (scaled for Avg); the other chunks hold
	// partial folds and must be treated as garbage. The owned chunk's
	// value is bitwise what a ring AllReduce would have left there.
	ReduceScatterV(data []float32, op ReduceOp) Work
	// AllGatherV distributes owned chunks in place: each rank
	// contributes data[its ChunkBounds chunk], and after Wait every
	// rank holds every chunk, copied verbatim.
	AllGatherV(data []float32) Work
	// CompressedReduceScatterV is ReduceScatterV through codec's byte
	// lanes with error feedback: contributions are quantized once (the
	// sender's residual slice absorbing the error), the fold is exact,
	// and the owned chunk is NOT re-quantized. residual is nil or a
	// caller-owned accumulator of len(data), committed only on success.
	CompressedReduceScatterV(data []float32, op ReduceOp, codec WireCodec, residual []float32) Work
}

// ReduceScatterV implements the sharded reduce-scatter on the
// mesh-backed group. It always runs the flat ring schedule regardless
// of the group's configured Algorithm: the bitwise DDP-vs-ZeRO
// agreement contract is defined against the ring fold chain, and a
// topology-dependent schedule here would silently break it.
func (g *meshGroup) ReduceScatterV(data []float32, op ReduceOp) Work {
	return g.submit(func(tag uint64) error {
		start := time.Now()
		err := ringReduceScatterOwned(g.mesh, tag, data, op)
		observeCollective("reduce_scatter_v", len(data), start, err)
		return err
	})
}

// AllGatherV implements the sharded all-gather on the mesh-backed
// group (flat ring; see ReduceScatterV for why).
func (g *meshGroup) AllGatherV(data []float32) Work {
	return g.submit(func(tag uint64) error {
		start := time.Now()
		err := ringAllGatherOwned(g.mesh, tag, data)
		observeCollective("all_gather_v", len(data), start, err)
		return err
	})
}

// CompressedReduceScatterV implements the compressed sharded
// reduce-scatter. Like CompressedAllReduce, residual updates are
// transactional: the collective runs against a shadow copy committed
// only on success, so an aborted collective (elastic teardown) cannot
// half-claim bytes it never transmitted. Falls back to
// quantize-then-exact-ring when the mesh has no byte lanes or the op
// is not Sum/Avg.
func (g *meshGroup) CompressedReduceScatterV(data []float32, op ReduceOp, codec WireCodec, residual []float32) Work {
	if codec == nil {
		return g.ReduceScatterV(data, op)
	}
	if residual != nil && len(residual) != len(data) {
		return CompletedWork(fmt.Errorf("comm: residual has %d elements for %d data elements", len(residual), len(data)))
	}
	return g.submit(func(tag uint64) error {
		start := time.Now()
		shadow := residual
		if residual != nil {
			shadow = append([]float32(nil), residual...)
		}
		wire, err := compressedReduceScatterOwned(g.mesh, tag, data, op, codec, shadow)
		if err != nil {
			return err
		}
		if residual != nil {
			copy(residual, shadow)
		}
		observeCollective("compressed_reduce_scatter_v", len(data), start, nil)
		if wire > 0 {
			mCompressedWireBytes.With(codec.Name()).Observe(float64(wire))
		}
		return nil
	})
}

// ringReduceScatterOwned runs the ring reduce-scatter phase and then
// rotates once more so the finished chunk lands on its owner: rank r
// ends with the full reduction in data[chunkBounds(n, k, r)], scaled
// for Avg. The fold chain per chunk is identical to ringAllReduce's —
// the rotation and the deferred owner-side scale are both
// value-preserving, so the owned chunk is bitwise the AllReduce result.
func ringReduceScatterOwned(m transport.Mesh, tag uint64, data []float32, op ReduceOp) error {
	k := m.Size()
	if k == 1 {
		return nil
	}
	if err := ringReduceScatterPhase(m, tag, data, op); err != nil {
		return err
	}
	rank := m.Rank()
	right := (rank + 1) % k
	left := (rank - 1 + k) % k
	n := len(data)
	// The phase leaves chunk (rank+1)%k finished here and chunk rank
	// finished on the left neighbour: one more hop delivers ownership.
	fs, fe := chunkBounds(n, k, (rank+1)%k)
	os, oe := chunkBounds(n, k, rank)
	errc := sendAsync(m, right, tag, data[fs:fe])
	buf, err := m.Recv(left, tag)
	if err != nil {
		<-errc
		return err
	}
	if err := <-errc; err != nil {
		return err
	}
	if len(buf) != oe-os {
		return fmt.Errorf("comm: ring chunk size mismatch: got %d want %d", len(buf), oe-os)
	}
	copy(data[os:oe], buf)
	if op == Avg {
		scale := 1 / float32(k)
		for i := os; i < oe; i++ {
			data[i] *= scale
		}
	}
	return nil
}

// ringAllGatherOwned is the in-place ring all-gather over the owner
// layout: each rank enters holding chunk rank and leaves holding every
// chunk, all copies verbatim.
func ringAllGatherOwned(m transport.Mesh, tag uint64, data []float32) error {
	k := m.Size()
	if k == 1 {
		return nil
	}
	rank := m.Rank()
	right := (rank + 1) % k
	left := (rank - 1 + k) % k
	n := len(data)
	for step := 0; step < k-1; step++ {
		sendIdx := (rank - step + k) % k
		recvIdx := (rank - step - 1 + k) % k
		ss, se := chunkBounds(n, k, sendIdx)
		rs, re := chunkBounds(n, k, recvIdx)
		errc := sendAsync(m, right, tag, data[ss:se])
		buf, err := m.Recv(left, tag)
		if err != nil {
			<-errc
			return err
		}
		if err := <-errc; err != nil {
			return err
		}
		if len(buf) != re-rs {
			return fmt.Errorf("comm: ring chunk size mismatch: got %d want %d", len(buf), re-rs)
		}
		copy(data[rs:re], buf)
	}
	return nil
}

// compressedReduceScatterOwned is the wire-level compressed sharded
// reduce-scatter: stage 1 of the compressed AllReduce schedule
// (compressedReduceScatterChunks), with the exact fold written into
// the owner chunk and scaled for Avg — no second quantization, since
// the reduced gradient shard feeds a local optimizer and never rides
// the wire again. Returns the encoded payload bytes this rank shipped.
func compressedReduceScatterOwned(m transport.Mesh, tag uint64, data []float32, op ReduceOp, codec WireCodec, residual []float32) (int, error) {
	k := m.Size()
	if k == 1 {
		// Match compressedAllReduce's world-1 semantics: a single rank
		// still pays the codec's accuracy cost so its residual
		// trajectory stays comparable across world sizes.
		return 0, quantizeThrough(codec, data, residual)
	}
	bm, haveBytes := transport.ByteLanes(m)
	if !haveBytes || (op != Sum && op != Avg) {
		if err := quantizeThrough(codec, data, residual); err != nil {
			return 0, err
		}
		return 0, ringReduceScatterOwned(m, tag, data, op)
	}
	acc, wire, err := compressedReduceScatterChunks(m, bm, tag, data, codec, residual)
	if err != nil {
		return 0, err
	}
	lo, hi := chunkBounds(len(data), k, m.Rank())
	copy(data[lo:hi], acc)
	if op == Avg {
		scale := 1 / float32(k)
		for i := lo; i < hi; i++ {
			data[i] *= scale
		}
	}
	return wire, nil
}

var _ ShardedGroup = (*meshGroup)(nil)
