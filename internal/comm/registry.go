package comm

import (
	"fmt"
	"sync"

	"repro/internal/transport"
)

// InProcRegistry coordinates the construction of named in-process
// ProcessGroups among goroutine ranks — the in-proc analogue of
// NewTCPGroup's store rendezvous, and the group REBUILD path elastic
// training uses: after a membership change, survivors agree (through
// rendezvous) on a fresh group name like "train-g3" and each calls
// Build; the first caller allocates the mesh set, the rest attach to
// their rank's view.
type InProcRegistry struct {
	mu      sync.Mutex
	entries map[string]*registryEntry
}

type registryEntry struct {
	world   int
	meshes  []transport.Mesh
	claimed int
}

// NewInProcRegistry returns an empty registry.
func NewInProcRegistry() *InProcRegistry {
	return &InProcRegistry{entries: make(map[string]*registryEntry)}
}

// Build returns rank's member of the named group of `world` ranks,
// creating the underlying mesh set on first call. All `world` ranks
// must call Build with the same name and world; each rank may claim its
// slot exactly once. Once every rank has claimed, the entry is dropped
// so names may be reused.
func (r *InProcRegistry) Build(name string, rank, world int, opts Options) (ProcessGroup, error) {
	if rank < 0 || rank >= world {
		return nil, fmt.Errorf("comm: registry %q: rank %d out of range [0,%d)", name, rank, world)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		e = &registryEntry{world: world, meshes: transport.NewInProcMeshes(world)}
		r.entries[name] = e
	}
	if e.world != world {
		return nil, fmt.Errorf("comm: registry %q: world mismatch (%d vs %d)", name, world, e.world)
	}
	mesh := e.meshes[rank]
	if mesh == nil {
		return nil, fmt.Errorf("comm: registry %q: rank %d already claimed", name, rank)
	}
	e.meshes[rank] = nil
	e.claimed++
	if e.claimed == e.world {
		delete(r.entries, name)
	}
	return NewGroup(mesh, opts), nil
}
