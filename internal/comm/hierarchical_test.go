package comm

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/transport"
)

// hostLayouts returns the topology layouts exercised per world size:
// nil (no topology), single host, flat (one rank per host), and — when
// the world is big enough — uneven multi-host splits like 3+2+1.
func hostLayouts(world int) map[string][]string {
	single := make([]string, world)
	flat := make([]string, world)
	for r := 0; r < world; r++ {
		single[r] = "h0"
		flat[r] = string(rune('a' + r))
	}
	layouts := map[string][]string{
		"none":   nil,
		"single": single,
		"flat":   flat,
	}
	if world >= 3 {
		// Uneven split: hosts of decreasing size, e.g. 6 -> 3+2+1,
		// 5 -> 3+2, 8 -> 3+2+1+2.
		uneven := make([]string, world)
		host, left, size := 0, world, 3
		for r := 0; r < world; {
			n := size
			if n > left {
				n = left
			}
			for i := 0; i < n; i++ {
				uneven[r] = string(rune('A' + host))
				r++
			}
			left -= n
			host++
			if size > 1 {
				size--
			}
		}
		layouts["uneven"] = uneven
		// Interleaved: ranks of one host are not contiguous, so the
		// leader sub-meshes exercise non-trivial rank remapping.
		inter := make([]string, world)
		for r := 0; r < world; r++ {
			inter[r] = string(rune('X' + r%2))
		}
		layouts["interleaved"] = inter
	}
	if world >= 4 {
		// Structured three-level labels (pod/rack/host): two ranks per
		// host, two hosts per rack, two racks per pod — the N-level
		// reduce/broadcast chain with a top ring among pod leaders.
		three := make([]string, world)
		for r := 0; r < world; r++ {
			three[r] = fmt.Sprintf("p%d/r%d/h%d", r/8, r/4, r/2)
		}
		layouts["threelevel"] = three
	}
	return layouts
}

// serialReduce folds inputs rank by rank in float64 — the reference
// all algorithms must approximate.
func serialReduce(inputs [][]float32, op ReduceOp) []float64 {
	n := len(inputs[0])
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		acc := float64(inputs[0][i])
		for r := 1; r < len(inputs); r++ {
			v := float64(inputs[r][i])
			switch op {
			case Sum, Avg:
				acc += v
			case Prod:
				acc *= v
			case Min:
				if v < acc {
					acc = v
				}
			case Max:
				if v > acc {
					acc = v
				}
			}
		}
		if op == Avg {
			acc /= float64(len(inputs))
		}
		out[i] = acc
	}
	return out
}

// TestAllReduceAlgorithmsTable is the table-driven correctness sweep:
// every algorithm x world size (including non-powers-of-two) x payload
// (zero-length, one element, uneven-chunk sizes) x host layout. Each
// cell asserts the two properties DDP depends on: bitwise-identical
// results on every rank, and agreement with a serial reference
// reduction within float tolerance.
func TestAllReduceAlgorithmsTable(t *testing.T) {
	algos := []Algorithm{Ring, Tree, Naive, Hierarchical, DoubleTree, Auto}
	worlds := []int{1, 2, 3, 5, 6, 8}
	sizes := []int{0, 1, 7, 1031}
	ops := []ReduceOp{Sum, Avg, Prod, Min, Max}
	for _, world := range worlds {
		for layoutName, hosts := range hostLayouts(world) {
			var topo *Topology
			if hosts != nil {
				topo = NewTopology(hosts)
			}
			for _, algo := range algos {
				for _, n := range sizes {
					for _, op := range ops {
						rng := rand.New(rand.NewSource(int64(world*1000 + n)))
						inputs := make([][]float32, world)
						for r := range inputs {
							inputs[r] = make([]float32, n)
							for i := range inputs[r] {
								inputs[r][i] = rng.Float32()*2 - 1
							}
						}
						groups := NewInProcGroups(world, Options{Algorithm: algo, Topology: topo})
						bufs := make([][]float32, world)
						runCollective(t, groups, func(rank int, g ProcessGroup) error {
							bufs[rank] = append([]float32(nil), inputs[rank]...)
							return g.AllReduce(bufs[rank], op).Wait()
						})
						closeAll(groups)
						for r := 1; r < world; r++ {
							for i := range bufs[0] {
								if bufs[r][i] != bufs[0][i] {
									t.Fatalf("%v/%s world=%d n=%d op=%v: rank %d differs from rank 0 at elem %d: %v vs %v",
										algo, layoutName, world, n, op, r, i, bufs[r][i], bufs[0][i])
								}
							}
						}
						want := serialReduce(inputs, op)
						for i := range want {
							if math.Abs(float64(bufs[0][i])-want[i]) > 1e-4 {
								t.Fatalf("%v/%s world=%d n=%d op=%v: elem %d = %v, want %v",
									algo, layoutName, world, n, op, i, bufs[0][i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestAlgorithmsMatchRingBitwiseOnExactData pins the acceptance
// criterion "hierarchical (two- and three-level) and double-tree
// produce bitwise-identical results to Ring" on inputs whose sums are
// exact in float32 (small integers): float addition of
// exactly-representable values is order-independent, so any
// reduction-order divergence between the algorithms would surface as
// differing bits here.
func TestAlgorithmsMatchRingBitwiseOnExactData(t *testing.T) {
	for _, world := range []int{1, 2, 3, 5, 6, 8} {
		for layoutName, hosts := range hostLayouts(world) {
			var topo *Topology
			if hosts != nil {
				topo = NewTopology(hosts)
			}
			const n = 513
			rng := rand.New(rand.NewSource(int64(world)))
			inputs := make([][]float32, world)
			for r := range inputs {
				inputs[r] = make([]float32, n)
				for i := range inputs[r] {
					inputs[r][i] = float32(rng.Intn(201) - 100)
				}
			}
			run := func(algo Algorithm, op ReduceOp) [][]float32 {
				groups := NewInProcGroups(world, Options{Algorithm: algo, Topology: topo})
				defer closeAll(groups)
				bufs := make([][]float32, world)
				runCollective(t, groups, func(rank int, g ProcessGroup) error {
					bufs[rank] = append([]float32(nil), inputs[rank]...)
					return g.AllReduce(bufs[rank], op).Wait()
				})
				return bufs
			}
			for _, op := range []ReduceOp{Sum, Avg} {
				ring := run(Ring, op)
				for _, algo := range []Algorithm{Hierarchical, DoubleTree} {
					got := run(algo, op)
					for r := 0; r < world; r++ {
						for i := 0; i < n; i++ {
							if ring[r][i] != got[r][i] {
								t.Fatalf("world=%d layout=%s op=%v rank=%d elem %d: ring %v vs %v %v",
									world, layoutName, op, r, i, ring[r][i], algo, got[r][i])
							}
						}
					}
				}
			}
		}
	}
}

func TestTopologyLayout(t *testing.T) {
	topo := NewTopology([]string{"a", "b", "a", "c", "b", "a"})
	if topo.Size() != 6 || topo.NumHosts() != 3 {
		t.Fatalf("size=%d hosts=%d", topo.Size(), topo.NumHosts())
	}
	if got := topo.Leaders(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("leaders = %v", got)
	}
	if got := topo.HostRanks(2); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Fatalf("host ranks of 2 = %v", got)
	}
	if !topo.MultiHost() || topo.Flat() || !topo.Hierarchical() {
		t.Fatal("layout classification wrong")
	}
	if s := topo.String(); s != "6 ranks / 3 hosts (3+2+1)" {
		t.Fatalf("String() = %q", s)
	}
	if flat := NewTopology([]string{"a", "b"}); !flat.Flat() || flat.Hierarchical() {
		t.Fatal("flat layout misclassified")
	}
	if single := NewTopology([]string{"a", "a"}); single.MultiHost() || single.Hierarchical() {
		t.Fatal("single-host layout misclassified")
	}
}

// TestChooseAlgorithm pins Auto's policy at every decision boundary:
// the small-payload tree band (and its Tree/DoubleTree world split),
// the large-payload hierarchical band with every way a topology can
// fail to qualify, the deep-world medium band, and the Ring default.
func TestChooseAlgorithm(t *testing.T) {
	multi := NewTopology([]string{"a", "a", "b", "b"})
	flat := NewTopology([]string{"a", "b", "c", "d"})
	single := NewTopology([]string{"a", "a", "a", "a"})
	three := NewTopology([]string{"p0/r0/h0", "p0/r0/h0", "p0/r1/h1", "p1/r2/h2", "p1/r2/h2", "p1/r3/h3"})
	deep := autoDoubleTreeDeepWorld
	cases := []struct {
		name  string
		topo  *Topology
		elems int
		world int
		want  Algorithm
	}{
		// Small payloads: log-depth trees; DoubleTree from world 4 up.
		{"small/world1", nil, 16, 1, Tree},
		{"small/shallow", nil, 16, autoDoubleTreeMinWorld - 1, Tree},
		{"small/min-doubletree-world", nil, 16, autoDoubleTreeMinWorld, DoubleTree},
		{"small/boundary-inclusive", multi, autoTreeMaxElems, 4, DoubleTree},
		{"small/shallow-boundary", nil, autoTreeMaxElems, 2, Tree},
		{"small/zero-elems", nil, 0, 8, DoubleTree},
		{"small/topology-ignored", multi, autoTreeMaxElems, 4, DoubleTree},
		// Large payloads: Hierarchical iff the topology qualifies.
		{"large/no-topology", nil, 1 << 20, 4, Ring},
		{"large/multi-host", multi, 1 << 20, 4, Hierarchical},
		{"large/boundary-inclusive", multi, autoHierarchicalMinElems, 4, Hierarchical},
		{"large/three-level", three, 1 << 20, 6, Hierarchical},
		{"large/flat-topology", flat, 1 << 20, 4, Ring},
		{"large/single-host", single, 1 << 20, 4, Ring},
		{"large/stale-topology", multi, 1 << 20, 6, Ring},
		{"large/deep-world-stays-ring", nil, 1 << 20, deep, Ring},
		// Medium payloads (between the cutoffs): DoubleTree only on
		// deep worlds, Ring otherwise.
		{"medium/shallow", multi, autoTreeMaxElems + 1, 4, Ring},
		{"medium/below-hier-boundary", multi, autoHierarchicalMinElems - 1, 4, Ring},
		{"medium/deep-world", nil, 32 << 10, deep, DoubleTree},
		{"medium/almost-deep", nil, 32 << 10, deep - 1, Ring},
		{"medium/deep-hier-topo", multi, 32 << 10, deep, DoubleTree},
	}
	for _, tc := range cases {
		if got := chooseAlgorithm(tc.topo, tc.elems, tc.world); got != tc.want {
			t.Fatalf("%s: chooseAlgorithm(%v, %d, %d) = %v, want %v", tc.name, tc.topo, tc.elems, tc.world, got, tc.want)
		}
	}
}

// countingMesh wraps a transport.Mesh and tallies the payload bytes
// crossing host boundaries under a given topology.
type countingMesh struct {
	transport.Mesh
	topo  *Topology
	cross *atomic.Int64
}

func (c *countingMesh) Send(to int, tag uint64, data []float32) error {
	if c.topo.HostOf(c.Rank()) != c.topo.HostOf(to) {
		c.cross.Add(int64(4 * len(data)))
	}
	return c.Mesh.Send(to, tag, data)
}

// TestHierarchicalMovesFewerCrossHostBytes verifies the point of the
// whole exercise at the transport level: for the same reduction, the
// hierarchical schedule puts strictly less traffic on the links that
// cross host boundaries (the modeled NIC) than the flat ring does.
func TestHierarchicalMovesFewerCrossHostBytes(t *testing.T) {
	const world, n = 8, 4096
	topo := NewTopology([]string{"a", "a", "a", "a", "b", "b", "b", "b"})
	measure := func(algo Algorithm) int64 {
		var cross atomic.Int64
		meshes := transport.NewInProcMeshes(world)
		groups := make([]ProcessGroup, world)
		for r := range groups {
			groups[r] = NewGroup(&countingMesh{Mesh: meshes[r], topo: topo, cross: &cross}, Options{Algorithm: algo, Topology: topo})
		}
		runCollective(t, groups, func(rank int, g ProcessGroup) error {
			buf := make([]float32, n)
			return g.AllReduce(buf, Sum).Wait()
		})
		closeAll(groups)
		return cross.Load()
	}
	ring := measure(Ring)
	hier := measure(Hierarchical)
	if hier >= ring {
		t.Fatalf("hierarchical moved %d cross-host bytes, flat ring %d", hier, ring)
	}
	// Structural expectation, not a tuning accident: the leader ring
	// moves ~2 buffers across hosts total while the flat ring's two
	// crossing edges move ~2(k-1)/k each (~3.5 buffers here).
	if ratio := float64(ring) / float64(hier); ratio < 1.5 {
		t.Fatalf("cross-host reduction only %.2fx", ratio)
	}
}

func TestHierarchicalTopologyMismatchErrors(t *testing.T) {
	groups := NewInProcGroups(3, Options{
		Algorithm: Hierarchical,
		Topology:  NewTopology([]string{"a", "a", "b", "b"}), // wrong world
	})
	defer closeAll(groups)
	errs := make([]error, 3)
	runCollectiveAllowErr(t, groups, func(rank int, g ProcessGroup) error {
		errs[rank] = g.AllReduce(make([]float32, 8), Sum).Wait()
		return nil
	})
	for rank, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: expected topology mismatch error", rank)
		}
	}
}

// runCollectiveAllowErr runs fn on every rank concurrently without
// failing on collective errors (the caller inspects them).
func runCollectiveAllowErr(t *testing.T, groups []ProcessGroup, fn func(rank int, g ProcessGroup) error) {
	t.Helper()
	done := make(chan struct{}, len(groups))
	for r, g := range groups {
		go func(rank int, g ProcessGroup) {
			defer func() { done <- struct{}{} }()
			_ = fn(rank, g)
		}(r, g)
	}
	for range groups {
		<-done
	}
}
