package comm

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/testutil"
)

func TestFloat16RoundExactValues(t *testing.T) {
	// Values exactly representable in fp16 must survive unchanged.
	for _, v := range []float32{0, 1, -1, 0.5, 2, 1024, -0.25, 65504} {
		if got := Float16Round(v); got != v {
			t.Fatalf("Float16Round(%v) = %v", v, got)
		}
	}
}

func TestFloat16RoundError(t *testing.T) {
	// fp16 has ~3 decimal digits; relative error must be < 2^-10.
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		if v > 65000 || v < -65000 || (v != 0 && math.Abs(float64(v)) < 6.2e-5) {
			return true // outside normal fp16 range
		}
		got := Float16Round(v)
		if v == 0 {
			return got == 0
		}
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		return rel <= 1.0/1024
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat16Overflow(t *testing.T) {
	if !math.IsInf(float64(Float16Round(1e20)), 1) {
		t.Fatal("large values must saturate to +Inf")
	}
	if !math.IsInf(float64(Float16Round(-1e20)), -1) {
		t.Fatal("large negatives must saturate to -Inf")
	}
}

func TestFloat16Subnormals(t *testing.T) {
	// 1e-7 is below the subnormal threshold; must flush to zero.
	if got := Float16Round(1e-8); got != 0 {
		t.Fatalf("tiny value = %v, want 0", got)
	}
	// Smallest fp16 subnormal is ~5.96e-8; 1e-5 is subnormal but
	// representable.
	got := Float16Round(1e-5)
	if got == 0 || math.Abs(float64(got-1e-5))/1e-5 > 0.05 {
		t.Fatalf("subnormal round-trip = %v", got)
	}
}

func TestFloat16CodecQuantizesInPlace(t *testing.T) {
	c := Float16Codec{}
	if c.Name() != "fp16" || c.CompressionRatio() != 2 {
		t.Fatal("codec metadata wrong")
	}
	data := []float32{0.1, 0.2, 0.3}
	c.Quantize(data)
	for _, v := range data {
		if Float16Round(v) != v {
			t.Fatalf("%v is not an fp16 value", v)
		}
	}
}

func TestOneBitCodecSignsAndScale(t *testing.T) {
	c := &OneBitCodec{}
	if c.Name() != "1bit" || c.CompressionRatio() != 32 {
		t.Fatal("codec metadata wrong")
	}
	data := []float32{1, -2, 3, -4}
	c.Quantize(data)
	// mean |x| = 2.5; outputs must be ±2.5 matching input signs.
	want := []float32{2.5, -2.5, 2.5, -2.5}
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("quantized = %v, want %v", data, want)
		}
	}
}

func TestOneBitCodecErrorFeedbackConverges(t *testing.T) {
	// With error feedback, repeatedly quantizing the same gradient must
	// transmit, on average, the true value: the accumulated transmitted
	// sum converges to n * true gradient.
	c := &OneBitCodec{}
	truth := []float32{0.5, -1.5, 0.25}
	var sent [3]float64
	const iters = 400
	for it := 0; it < iters; it++ {
		buf := append([]float32(nil), truth...)
		c.Quantize(buf)
		for i, v := range buf {
			sent[i] += float64(v)
		}
	}
	for i := range truth {
		avg := sent[i] / iters
		if math.Abs(avg-float64(truth[i])) > 0.05 {
			t.Fatalf("element %d average transmitted %v, want %v", i, avg, truth[i])
		}
	}
}

// wireCodecs lists every WireCodec under test.
func wireCodecs() []WireCodec {
	return []WireCodec{Float16Codec{}, &OneBitCodec{}, &TopKCodec{}, &TopKCodec{K: 0.5}}
}

// TestWireCodecRoundTrip: Encode must produce a frame within
// EncodedSize that Decode expands losslessly for values already in the
// codec's representable set, across the awkward shapes (empty, single
// element, non-power-of-two lengths).
func TestWireCodecRoundTrip(t *testing.T) {
	inputs := [][]float32{
		{},
		{1.5},
		{0.5, -0.25, 0, 3, -7},          // non-pow2
		{1, -1, 1, -1, 1, -1, 1, -1, 1}, // 9 elems: partial bitmap byte
		make([]float32, 100),            // all zero
	}
	for i := range inputs[4] {
		inputs[4][i] = float32(i%13) - 6
	}
	for _, c := range wireCodecs() {
		for ti, in := range inputs {
			data := append([]float32(nil), in...)
			frame := c.Encode(nil, data, nil)
			if len(frame) > c.EncodedSize(len(in)) {
				t.Fatalf("%s case %d: frame %d bytes exceeds EncodedSize %d", c.Name(), ti, len(frame), c.EncodedSize(len(in)))
			}
			for j := range in {
				if data[j] != in[j] {
					t.Fatalf("%s case %d: Encode mutated data", c.Name(), ti)
				}
			}
			out := make([]float32, len(in))
			if err := c.Decode(frame, out); err != nil {
				t.Fatalf("%s case %d: decode: %v", c.Name(), ti, err)
			}
			// Decode(Encode(x)) must equal Quantize(x) for finite x.
			want := append([]float32(nil), in...)
			freshQuantizer(c).Quantize(want)
			for j := range want {
				if out[j] != want[j] {
					t.Fatalf("%s case %d elem %d: wire %v, quantize %v", c.Name(), ti, j, out[j], want[j])
				}
			}
		}
	}
}

// freshQuantizer returns an unused instance of the same codec type, so
// internal Quantize residuals start from zero like a nil Encode
// residual.
func freshQuantizer(c WireCodec) Codec {
	switch v := c.(type) {
	case Float16Codec:
		return Float16Codec{}
	case *OneBitCodec:
		return &OneBitCodec{}
	case *TopKCodec:
		return &TopKCodec{K: v.K}
	default:
		return c
	}
}

// TestWireCodecDecodeRejectsBadFrames: wrong sizes and out-of-range
// indices must error, not corrupt memory.
func TestWireCodecDecodeRejectsBadFrames(t *testing.T) {
	out := make([]float32, 8)
	for _, c := range wireCodecs() {
		if err := c.Decode([]byte{1, 2, 3}, out); err == nil {
			t.Fatalf("%s: truncated frame decoded", c.Name())
		}
	}
	// topk frame with an out-of-range index.
	tk := &TopKCodec{}
	frame := tk.Encode(nil, []float32{1, 2, 3, 4}, nil)
	frame[4] = 0xff // first index -> 255
	if err := tk.Decode(frame, make([]float32, 4)); err == nil {
		t.Fatal("topk: out-of-range index decoded")
	}
}

// TestCodecNonFiniteGuard: Inf/NaN elements must not poison the 1-bit
// scale or any error-feedback residual — they are dropped, counted, and
// the rest of the frame stays usable (the satellite bugfix: before the
// guard, one Inf made the residual NaN forever).
func TestCodecNonFiniteGuard(t *testing.T) {
	inf := float32(math.Inf(1))
	nan := float32(math.NaN())
	for _, c := range wireCodecs() {
		data := []float32{1, inf, -2, nan, 3}
		residual := make([]float32, len(data))
		before := DroppedNonFinite()
		frame := c.Encode(nil, data, residual)
		if got := DroppedNonFinite() - before; got != 2 {
			t.Fatalf("%s: dropped counter advanced by %d, want 2", c.Name(), got)
		}
		for i, r := range residual {
			if math.IsNaN(float64(r)) || math.IsInf(float64(r), 0) {
				t.Fatalf("%s: residual[%d] = %v is non-finite", c.Name(), i, r)
			}
		}
		out := make([]float32, len(data))
		if err := c.Decode(frame, out); err != nil {
			t.Fatalf("%s: decode: %v", c.Name(), err)
		}
		for i, v := range out {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: decoded[%d] = %v is non-finite", c.Name(), i, v)
			}
		}
		// A second encode must keep working with sane values.
		c.Encode(nil, []float32{1, -1}, residual[:2])
		for _, r := range residual[:2] {
			if math.IsNaN(float64(r)) {
				t.Fatalf("%s: residual poisoned after recovery", c.Name())
			}
		}
	}
}

// TestOneBitQuantizeGuards covers the legacy Quantize entry points: an
// empty slice is a no-op (no 0/0 scale), and a non-finite element no
// longer corrupts the internal residual forever.
func TestOneBitQuantizeGuards(t *testing.T) {
	c := &OneBitCodec{}
	c.Quantize(nil) // must not panic or divide by zero

	data := []float32{1, float32(math.Inf(1)), -3}
	c.Quantize(data)
	for i, v := range data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("quantized[%d] = %v", i, v)
		}
	}
	// The next iteration sees finite values and a finite residual.
	data2 := []float32{1, 2, -3}
	c.Quantize(data2)
	for i, v := range data2 {
		if math.IsNaN(float64(v)) {
			t.Fatalf("iteration 2 element %d is NaN: residual was poisoned", i)
		}
	}
}

// TestTopKCodecSelection: the largest-magnitude elements survive, the
// rest land in the residual.
func TestTopKCodecSelection(t *testing.T) {
	c := &TopKCodec{K: 0.4} // keep 2 of 5
	data := []float32{0.1, -5, 0.2, 4, -0.3}
	residual := make([]float32, 5)
	frame := c.Encode(nil, data, residual)
	out := make([]float32, 5)
	if err := c.Decode(frame, out); err != nil {
		t.Fatal(err)
	}
	want := []float32{0, -5, 0, 4, 0}
	wantRes := []float32{0.1, 0, 0.2, 0, -0.3}
	for i := range want {
		if out[i] != want[i] || residual[i] != wantRes[i] {
			t.Fatalf("elem %d: out %v (want %v), residual %v (want %v)", i, out[i], want[i], residual[i], wantRes[i])
		}
	}
	// With feedback, the residual rides into the next frame: 0.3 is now
	// the biggest leftover and must be selected once data is quiet.
	quiet := make([]float32, 5)
	frame2 := c.Encode(nil, quiet, residual)
	if err := c.Decode(frame2, out); err != nil {
		t.Fatal(err)
	}
	if out[4] != -0.3 {
		t.Fatalf("carried residual not transmitted: %v", out)
	}
}

// TestErrorFeedbackAccumulates: repeated encodes of the same gradient
// transmit, on average, the true value — the property that makes
// quantized SGD converge (and that dies without residual carry).
func TestErrorFeedbackAccumulates(t *testing.T) {
	for _, c := range []WireCodec{&OneBitCodec{}, &TopKCodec{K: 0.34}} {
		truth := []float32{0.5, -1.5, 0.25}
		residual := make([]float32, len(truth))
		sent := make([]float64, len(truth))
		const iters = 400
		out := make([]float32, len(truth))
		for it := 0; it < iters; it++ {
			frame := c.Encode(nil, truth, residual)
			if err := c.Decode(frame, out); err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				sent[i] += float64(v)
			}
		}
		for i := range truth {
			avg := sent[i] / iters
			if math.Abs(avg-float64(truth[i])) > 0.05 {
				t.Fatalf("%s element %d: average transmitted %v, want %v", c.Name(), i, avg, truth[i])
			}
		}
	}
}

// TestSelectTopKMatchesFullSort pins quickselect's selected SET (and
// its deterministic tie-breaking) against the full-sort reference, over
// shapes with duplicates, ties, zeros, and every k.
func TestSelectTopKMatchesFullSort(t *testing.T) {
	rng := testutil.SeededRand(t)
	cases := [][]float32{
		{1},
		{0, 0, 0, 0},
		{1, -1, 1, -1, 2},
		{5, 4, 3, 2, 1},
		{1, 2, 3, 4, 5},
	}
	for c := 0; c < 20; c++ {
		n := 1 + rng.Intn(64)
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = float32(rng.Intn(7)-3) / 2 // many ties
		}
		cases = append(cases, vals)
	}
	for ci, vals := range cases {
		n := len(vals)
		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		sort.Slice(ref, func(a, b int) bool { return topKRanks(vals, ref[a], ref[b]) })
		for k := 1; k <= n; k++ {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			selectTopK(idx, vals, k)
			got := append([]int(nil), idx[:k]...)
			want := append([]int(nil), ref[:k]...)
			sort.Ints(got)
			sort.Ints(want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("case %d k=%d: selected %v, want %v (vals %v)", ci, k, got, want, vals)
				}
			}
		}
	}
}

// TestOneBitOverflowingResidualDropped: data+residual overflowing to
// Inf (both operands finite) must be dropped consistently — the scale
// excludes it AND the residual must not retain the huge pre-overflow
// value (the pass-1/pass-2 disagreement found in review).
func TestOneBitOverflowingResidualDropped(t *testing.T) {
	c := &OneBitCodec{}
	data := []float32{3e38, 1, -1}
	residual := []float32{3e38, 0, 0} // 3e38+3e38 overflows float32
	frame := c.Encode(nil, data, residual)
	out := make([]float32, 3)
	if err := c.Decode(frame, out); err != nil {
		t.Fatal(err)
	}
	// Scale must come from the finite elements only: mean(|1|,|-1|)=1.
	if out[1] != 1 || out[2] != -1 {
		t.Fatalf("scale polluted by overflowed element: %v", out)
	}
	// The overflowed element's residual must be small feedback, not 3e38.
	if math.Abs(float64(residual[0])) > 10 {
		t.Fatalf("overflowed element leaked into residual: %v", residual[0])
	}
}

// TestFloat16SaturationKeepsResidualFinite: a finite value beyond fp16
// range must saturate to ±65504 on the wire (not ±Inf, which turns the
// reduced sum Inf) and leave the saturation error in the residual, not
// -Inf.
func TestFloat16SaturationKeepsResidualFinite(t *testing.T) {
	c := Float16Codec{}
	data := []float32{1e5, -1e5, 1}
	residual := make([]float32, 3)
	frame := c.Encode(nil, data, residual)
	out := make([]float32, 3)
	if err := c.Decode(frame, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 65504 || out[1] != -65504 {
		t.Fatalf("out-of-range values must saturate finite: %v", out)
	}
	if residual[0] != 1e5-65504 || residual[1] != -(1e5-65504) {
		t.Fatalf("saturation error must be carried in the residual: %v", residual)
	}
	// Without error feedback the wire stays finite too.
	frame = c.Encode(nil, []float32{1e6}, nil)
	if err := c.Decode(frame, out[:1]); err != nil {
		t.Fatal(err)
	}
	if math.IsInf(float64(out[0]), 0) {
		t.Fatal("wire value must not be Inf")
	}
}
