package comm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloat16RoundExactValues(t *testing.T) {
	// Values exactly representable in fp16 must survive unchanged.
	for _, v := range []float32{0, 1, -1, 0.5, 2, 1024, -0.25, 65504} {
		if got := Float16Round(v); got != v {
			t.Fatalf("Float16Round(%v) = %v", v, got)
		}
	}
}

func TestFloat16RoundError(t *testing.T) {
	// fp16 has ~3 decimal digits; relative error must be < 2^-10.
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		if v > 65000 || v < -65000 || (v != 0 && math.Abs(float64(v)) < 6.2e-5) {
			return true // outside normal fp16 range
		}
		got := Float16Round(v)
		if v == 0 {
			return got == 0
		}
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		return rel <= 1.0/1024
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat16Overflow(t *testing.T) {
	if !math.IsInf(float64(Float16Round(1e20)), 1) {
		t.Fatal("large values must saturate to +Inf")
	}
	if !math.IsInf(float64(Float16Round(-1e20)), -1) {
		t.Fatal("large negatives must saturate to -Inf")
	}
}

func TestFloat16Subnormals(t *testing.T) {
	// 1e-7 is below the subnormal threshold; must flush to zero.
	if got := Float16Round(1e-8); got != 0 {
		t.Fatalf("tiny value = %v, want 0", got)
	}
	// Smallest fp16 subnormal is ~5.96e-8; 1e-5 is subnormal but
	// representable.
	got := Float16Round(1e-5)
	if got == 0 || math.Abs(float64(got-1e-5))/1e-5 > 0.05 {
		t.Fatalf("subnormal round-trip = %v", got)
	}
}

func TestFloat16CodecQuantizesInPlace(t *testing.T) {
	c := Float16Codec{}
	if c.Name() != "fp16" || c.CompressionRatio() != 2 {
		t.Fatal("codec metadata wrong")
	}
	data := []float32{0.1, 0.2, 0.3}
	c.Quantize(data)
	for _, v := range data {
		if Float16Round(v) != v {
			t.Fatalf("%v is not an fp16 value", v)
		}
	}
}

func TestOneBitCodecSignsAndScale(t *testing.T) {
	c := &OneBitCodec{}
	if c.Name() != "1bit" || c.CompressionRatio() != 32 {
		t.Fatal("codec metadata wrong")
	}
	data := []float32{1, -2, 3, -4}
	c.Quantize(data)
	// mean |x| = 2.5; outputs must be ±2.5 matching input signs.
	want := []float32{2.5, -2.5, 2.5, -2.5}
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("quantized = %v, want %v", data, want)
		}
	}
}

func TestOneBitCodecErrorFeedbackConverges(t *testing.T) {
	// With error feedback, repeatedly quantizing the same gradient must
	// transmit, on average, the true value: the accumulated transmitted
	// sum converges to n * true gradient.
	c := &OneBitCodec{}
	truth := []float32{0.5, -1.5, 0.25}
	var sent [3]float64
	const iters = 400
	for it := 0; it < iters; it++ {
		buf := append([]float32(nil), truth...)
		c.Quantize(buf)
		for i, v := range buf {
			sent[i] += float64(v)
		}
	}
	for i := range truth {
		avg := sent[i] / iters
		if math.Abs(avg-float64(truth[i])) > 0.05 {
			t.Fatalf("element %d average transmitted %v, want %v", i, avg, truth[i])
		}
	}
}
