package comm

import (
	"fmt"

	"repro/internal/transport"
)

// binomialRelation returns vrank's neighbours in the binomial tree over
// k ranks rooted at vrank 0 — the one schedule both binomialReduce and
// binomialBroadcast walk, in opposite directions. The parent is vrank
// minus its lowest set bit (-1 for the root); the children are
// vrank+1, vrank+2, vrank+4, ... for every mask below vrank's lowest
// set bit (every mask below the tree's span for the root), clamped to
// k, listed in increasing-mask order.
//
// Direction fixes the traversal order: the reduce folds children in
// increasing-mask order and then sends to the parent, while the
// broadcast receives from the parent and then fans out to children in
// decreasing-mask order (largest subtree first, so deep subtrees start
// earliest). Both orders are deterministic, which is what keeps the
// collectives bitwise-reproducible.
func binomialRelation(vrank, k int) (parent int, children []int) {
	parent = -1
	low := 1
	for low < k {
		low <<= 1
	}
	if vrank != 0 {
		low = vrank & -vrank
		parent = vrank - low
	}
	for mask := 1; mask < low; mask <<= 1 {
		if c := vrank + mask; c < k {
			children = append(children, c)
		}
	}
	return parent, children
}

// binomialReduce folds every rank's data onto rank 0 along the binomial
// tree (the reduce-up half of treeAllReduce): each rank receives its
// children's partials in increasing-mask order, folds them in, and
// forwards the accumulated buffer to its parent. The accumulation order
// on each receiver is fixed by the tree, so the result on rank 0 is
// deterministic. Non-root ranks' data is left partially reduced —
// callers must overwrite it (the Hierarchical algorithm broadcasts the
// finished buffer back in its last phase).
func binomialReduce(m transport.Mesh, tag uint64, data []float32, op ReduceOp) error {
	k := m.Size()
	if k == 1 {
		return nil
	}
	parent, children := binomialRelation(m.Rank(), k)
	for _, c := range children {
		buf, err := m.Recv(c, tag)
		if err != nil {
			return err
		}
		if len(buf) != len(data) {
			return fmt.Errorf("comm: reduce size mismatch: got %d want %d", len(buf), len(data))
		}
		reduceInto(data, buf, op)
	}
	if parent >= 0 {
		return m.Send(parent, tag, data)
	}
	return nil
}

// binomialBroadcast propagates root's data to all ranks along the same
// binomial tree, walked top-down: receive once from the parent, then
// forward to children in decreasing-mask order. Ranks are rotated so
// the tree is rooted at root.
func binomialBroadcast(m transport.Mesh, tag uint64, data []float32, root int) error {
	k := m.Size()
	if k == 1 {
		return nil
	}
	// Work in a rotated rank space where the root is rank 0.
	vrank := (m.Rank() - root + k) % k
	parent, children := binomialRelation(vrank, k)
	if parent >= 0 {
		buf, err := m.Recv((parent+root)%k, tag)
		if err != nil {
			return err
		}
		if len(buf) != len(data) {
			return fmt.Errorf("comm: broadcast size mismatch: got %d want %d", len(buf), len(data))
		}
		copy(data, buf)
	}
	for i := len(children) - 1; i >= 0; i-- {
		if err := m.Send((children[i]+root)%k, tag, data); err != nil {
			return err
		}
	}
	return nil
}
