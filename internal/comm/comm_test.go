package comm

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// runCollective runs fn on every rank's group concurrently and fails the
// test on any error.
func runCollective(t *testing.T, groups []ProcessGroup, fn func(rank int, g ProcessGroup) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(groups))
	for r, g := range groups {
		wg.Add(1)
		go func(rank int, g ProcessGroup) {
			defer wg.Done()
			errs[rank] = fn(rank, g)
		}(r, g)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func closeAll(groups []ProcessGroup) {
	for _, g := range groups {
		g.Close()
	}
}

func TestAllReduceSumAllAlgorithmsAllWorlds(t *testing.T) {
	for _, algo := range []Algorithm{Ring, Tree, Naive} {
		for _, world := range []int{1, 2, 3, 4, 5, 8} {
			groups := NewInProcGroups(world, Options{Algorithm: algo})
			data := make([][]float32, world)
			// rank r contributes r+1 in every slot; sum = world*(world+1)/2.
			want := float32(world * (world + 1) / 2)
			runCollective(t, groups, func(rank int, g ProcessGroup) error {
				data[rank] = []float32{float32(rank + 1), float32(rank + 1), float32(rank + 1)}
				return g.AllReduce(data[rank], Sum).Wait()
			})
			for rank := 0; rank < world; rank++ {
				for i, v := range data[rank] {
					if v != want {
						t.Fatalf("%v world=%d rank=%d elem %d = %v, want %v", algo, world, rank, i, v, want)
					}
				}
			}
			closeAll(groups)
		}
	}
}

func TestAllReduceOpsSemantics(t *testing.T) {
	const world = 3
	cases := []struct {
		op   ReduceOp
		want float32
	}{
		{Sum, 1 + 2 + 3},
		{Prod, 1 * 2 * 3},
		{Min, 1},
		{Max, 3},
		{Avg, 2},
	}
	for _, tc := range cases {
		groups := NewInProcGroups(world, Options{Algorithm: Ring})
		results := make([]float32, world)
		runCollective(t, groups, func(rank int, g ProcessGroup) error {
			buf := []float32{float32(rank + 1)}
			if err := g.AllReduce(buf, tc.op).Wait(); err != nil {
				return err
			}
			results[rank] = buf[0]
			return nil
		})
		for rank, got := range results {
			if math.Abs(float64(got-tc.want)) > 1e-6 {
				t.Fatalf("op %v rank %d = %v, want %v", tc.op, rank, got, tc.want)
			}
		}
		closeAll(groups)
	}
}

func TestAllReduceBitwiseIdenticalAcrossRanks(t *testing.T) {
	// The DDP correctness guarantee requires replicas to see *exactly*
	// the same reduced gradients, not merely close ones.
	for _, algo := range []Algorithm{Ring, Tree, Naive} {
		const world, n = 4, 1031 // odd size exercises uneven ring chunks
		groups := NewInProcGroups(world, Options{Algorithm: algo})
		data := make([][]float32, world)
		rng := rand.New(rand.NewSource(7))
		for r := range data {
			data[r] = make([]float32, n)
			for i := range data[r] {
				data[r][i] = rng.Float32()*2 - 1
			}
		}
		runCollective(t, groups, func(rank int, g ProcessGroup) error {
			return g.AllReduce(data[rank], Avg).Wait()
		})
		for r := 1; r < world; r++ {
			for i := range data[0] {
				if data[r][i] != data[0][i] {
					t.Fatalf("%v: rank %d differs from rank 0 at %d: %v vs %v",
						algo, r, i, data[r][i], data[0][i])
				}
			}
		}
		closeAll(groups)
	}
}

func TestAllReduceMatchesLocalSumProperty(t *testing.T) {
	// Property: allreduce(sum) over random vectors equals the local sum
	// of all contributions, within float tolerance, for every algorithm.
	f := func(seed int64, worldSeed uint8, sizeSeed uint16) bool {
		world := int(worldSeed%6) + 1
		n := int(sizeSeed%257) + 1
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]float32, world)
		expected := make([]float64, n)
		for r := range inputs {
			inputs[r] = make([]float32, n)
			for i := range inputs[r] {
				inputs[r][i] = rng.Float32() - 0.5
				expected[i] += float64(inputs[r][i])
			}
		}
		for _, algo := range []Algorithm{Ring, Tree, Naive} {
			groups := NewInProcGroups(world, Options{Algorithm: algo})
			bufs := make([][]float32, world)
			var wg sync.WaitGroup
			ok := true
			var mu sync.Mutex
			for r := 0; r < world; r++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					bufs[rank] = append([]float32(nil), inputs[rank]...)
					if err := groups[rank].AllReduce(bufs[rank], Sum).Wait(); err != nil {
						mu.Lock()
						ok = false
						mu.Unlock()
					}
				}(r)
			}
			wg.Wait()
			closeAll(groups)
			if !ok {
				return false
			}
			for i := range expected {
				if math.Abs(float64(bufs[0][i])-expected[i]) > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastFromEveryRoot(t *testing.T) {
	const world = 5
	for root := 0; root < world; root++ {
		groups := NewInProcGroups(world, Options{})
		data := make([][]float32, world)
		runCollective(t, groups, func(rank int, g ProcessGroup) error {
			if rank == root {
				data[rank] = []float32{42, 43}
			} else {
				data[rank] = []float32{0, 0}
			}
			return g.Broadcast(data[rank], root).Wait()
		})
		for rank := 0; rank < world; rank++ {
			if data[rank][0] != 42 || data[rank][1] != 43 {
				t.Fatalf("root=%d rank=%d got %v", root, rank, data[rank])
			}
		}
		closeAll(groups)
	}
}

func TestBroadcastInvalidRoot(t *testing.T) {
	groups := NewInProcGroups(2, Options{})
	defer closeAll(groups)
	if err := groups[0].Broadcast([]float32{1}, 9).Wait(); err == nil {
		t.Fatal("expected error for out-of-range root")
	}
}

func TestAllGather(t *testing.T) {
	const world = 4
	groups := NewInProcGroups(world, Options{})
	defer closeAll(groups)
	results := make([][][]float32, world)
	runCollective(t, groups, func(rank int, g ProcessGroup) error {
		dst := make([][]float32, world)
		for i := range dst {
			dst[i] = make([]float32, 2)
		}
		src := []float32{float32(rank), float32(rank * 10)}
		if err := g.AllGather(dst, src).Wait(); err != nil {
			return err
		}
		results[rank] = dst
		return nil
	})
	for rank := 0; rank < world; rank++ {
		for peer := 0; peer < world; peer++ {
			if results[rank][peer][0] != float32(peer) || results[rank][peer][1] != float32(peer*10) {
				t.Fatalf("rank %d slot %d = %v", rank, peer, results[rank][peer])
			}
		}
	}
}

func TestBarrier(t *testing.T) {
	const world = 4
	groups := NewInProcGroups(world, Options{})
	defer closeAll(groups)
	runCollective(t, groups, func(rank int, g ProcessGroup) error {
		return g.Barrier().Wait()
	})
}

func TestAsyncOrderingPreserved(t *testing.T) {
	// Submit several allreduces without waiting; they must execute in
	// submission order on every rank (the ProcessGroup contract DDP's
	// bucket ordering relies on).
	const world, ops = 3, 8
	groups := NewInProcGroups(world, Options{})
	defer closeAll(groups)
	bufs := make([][][]float32, world)
	runCollective(t, groups, func(rank int, g ProcessGroup) error {
		works := make([]Work, ops)
		bufs[rank] = make([][]float32, ops)
		for i := 0; i < ops; i++ {
			bufs[rank][i] = []float32{float32(i)}
			works[i] = g.AllReduce(bufs[rank][i], Sum)
		}
		return WaitAll(works...)
	})
	for rank := 0; rank < world; rank++ {
		for i := 0; i < ops; i++ {
			if bufs[rank][i][0] != float32(i*world) {
				t.Fatalf("rank %d op %d = %v, want %v", rank, i, bufs[rank][i][0], i*world)
			}
		}
	}
}

func TestOperationsAfterCloseFail(t *testing.T) {
	groups := NewInProcGroups(2, Options{})
	groups[0].Close()
	groups[1].Close()
	if err := groups[0].AllReduce([]float32{1}, Sum).Wait(); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestWorldOfOneIsLocal(t *testing.T) {
	groups := NewInProcGroups(1, Options{Algorithm: Ring})
	defer closeAll(groups)
	buf := []float32{5}
	if err := groups[0].AllReduce(buf, Avg).Wait(); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 5 {
		t.Fatalf("singleton avg changed data: %v", buf[0])
	}
}

func TestRoundRobinDispatchAndCorrectness(t *testing.T) {
	const world, nGroups = 3, 3
	subGroups := make([][]ProcessGroup, nGroups)
	for i := range subGroups {
		subGroups[i] = NewInProcGroups(world, Options{})
	}
	rrs := make([]ProcessGroup, world)
	for r := 0; r < world; r++ {
		gs := make([]ProcessGroup, nGroups)
		for i := range gs {
			gs[i] = subGroups[i][r]
		}
		rr, err := NewRoundRobin(gs...)
		if err != nil {
			t.Fatal(err)
		}
		rrs[r] = rr
	}
	defer closeAll(rrs)

	// 7 collectives rotate over 3 sub-groups; results must still be
	// correct and identical on all ranks.
	bufs := make([][][]float32, world)
	runCollective(t, rrs, func(rank int, g ProcessGroup) error {
		works := make([]Work, 7)
		bufs[rank] = make([][]float32, 7)
		for i := range works {
			bufs[rank][i] = []float32{float32(rank + i)}
			works[i] = g.AllReduce(bufs[rank][i], Sum)
		}
		return WaitAll(works...)
	})
	for i := 0; i < 7; i++ {
		want := float32(0+i) + float32(1+i) + float32(2+i)
		for rank := 0; rank < world; rank++ {
			if bufs[rank][i][0] != want {
				t.Fatalf("rr op %d rank %d = %v, want %v", i, rank, bufs[rank][i][0], want)
			}
		}
	}
}

func TestRoundRobinRejectsMismatchedGroups(t *testing.T) {
	a := NewInProcGroups(2, Options{})
	b := NewInProcGroups(3, Options{})
	defer closeAll(a)
	defer closeAll(b)
	if _, err := NewRoundRobin(a[0], b[0]); err == nil {
		t.Fatal("expected size mismatch error")
	}
	if _, err := NewRoundRobin(); err == nil {
		t.Fatal("expected empty group list error")
	}
}

func TestReduceOpString(t *testing.T) {
	if Sum.String() != "sum" || Avg.String() != "avg" || Ring.String() != "ring" {
		t.Fatal("string names wrong")
	}
}
