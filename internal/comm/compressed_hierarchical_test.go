package comm

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/transport"
)

// compressedHierGroups builds groups configured for the compressed
// leader ring: Hierarchical algorithm over the given topology.
func compressedHierGroups(meshes []transport.Mesh, topo *Topology) []ProcessGroup {
	return groupsOver(meshes, Options{Algorithm: Hierarchical, Topology: topo})
}

// TestCompressedLeaderRingMatchesRingBitwise: with fp16 — exact on the
// small integers used here — the compressed leader ring must agree
// BITWISE with the plain Ring AllReduce on every rank, over two- and
// three-level topologies, in-proc and TCP, worlds up to 8. This is the
// determinism acceptance test for the compressed-hierarchical path: the
// codec round trip is lossless for this data, so any divergence is a
// scheduling bug, and any cross-rank disagreement breaks DDP's replica
// consistency invariant.
func TestCompressedLeaderRingMatchesRingBitwise(t *testing.T) {
	layouts := func(world int) map[string][]string {
		two := make([]string, world)
		three := make([]string, world)
		for r := 0; r < world; r++ {
			two[r] = fmt.Sprintf("h%d", r/2)
			three[r] = fmt.Sprintf("p%d/r%d/h%d", r/8, r/4, r/2)
		}
		return map[string][]string{"twolevel": two, "threelevel": three}
	}
	for _, tr := range []string{"inproc", "tcp"} {
		for _, world := range []int{4, 6, 8} {
			if tr == "tcp" && world != 8 {
				continue // one TCP world keeps socket churn bounded
			}
			for layoutName, labels := range layouts(world) {
				topo := NewTopology(labels)
				var meshes []transport.Mesh
				if tr == "inproc" {
					meshes = transport.NewInProcMeshes(world)
				} else {
					meshes = tcpTestMeshes(t, world)
				}
				const n = 1027
				rng := rand.New(rand.NewSource(int64(world * n)))
				inputs := make([][]float32, world)
				for r := range inputs {
					inputs[r] = make([]float32, n)
					for i := range inputs[r] {
						inputs[r][i] = float32(rng.Intn(101) - 50)
					}
				}
				want := make([]float32, n)
				for i := 0; i < n; i++ {
					for r := 0; r < world; r++ {
						want[i] += inputs[r][i]
					}
				}

				groups := compressedHierGroups(meshes, topo)
				bufs := make([][]float32, world)
				residuals := make([][]float32, world)
				runCollective(t, groups, func(rank int, g ProcessGroup) error {
					bufs[rank] = append([]float32(nil), inputs[rank]...)
					residuals[rank] = make([]float32, n)
					return CompressedAllReduce(g, bufs[rank], Sum, Float16Codec{}, residuals[rank]).Wait()
				})
				closeAll(groups)
				for r := 0; r < world; r++ {
					for i := 0; i < n; i++ {
						if bufs[r][i] != want[i] {
							t.Fatalf("%s/%s world=%d rank=%d elem %d: got %v want %v (exact)",
								tr, layoutName, world, r, i, bufs[r][i], want[i])
						}
					}
				}
				// Only the top-ring leaders quantize; everyone's
				// residual stays zero here because fp16 is exact on
				// this data, and non-leaders' must be untouched by
				// construction.
				for r := 0; r < world; r++ {
					for i, v := range residuals[r] {
						if v != 0 {
							t.Fatalf("%s/%s world=%d rank=%d residual[%d] = %v, want 0", tr, layoutName, world, r, i, v)
						}
					}
				}
			}
		}
	}
}

// TestCompressedLeaderRingAllRanksAgree: for the lossy codecs the
// reduced values legitimately differ from Ring's, but every rank must
// still finish bitwise-identical — and non-leader residuals must stay
// untouched while leader residuals accumulate the quantization error.
func TestCompressedLeaderRingAllRanksAgree(t *testing.T) {
	const world, n = 6, 500
	topo := NewTopology([]string{"a", "a", "a", "b", "b", "b"})
	for _, codec := range wireCodecs() {
		meshes := transport.NewInProcMeshes(world)
		groups := compressedHierGroups(meshes, topo)
		bufs := make([][]float32, world)
		residuals := make([][]float32, world)
		runCollective(t, groups, func(rank int, g ProcessGroup) error {
			bufs[rank] = make([]float32, n)
			for i := range bufs[rank] {
				bufs[rank][i] = float32(rank+1)*0.375 + float32(i%13)*0.1
			}
			residuals[rank] = make([]float32, n)
			return CompressedAllReduce(g, bufs[rank], Avg, codec, residuals[rank]).Wait()
		})
		closeAll(groups)
		for r := 1; r < world; r++ {
			for i := range bufs[0] {
				if bufs[r][i] != bufs[0][i] {
					t.Fatalf("%s: rank %d diverges at elem %d: %v vs %v", codec.Name(), r, i, bufs[r][i], bufs[0][i])
				}
			}
		}
		// Leaders are ranks 0 and 3; everyone else must have untouched
		// (zero) residuals regardless of codec loss.
		for _, r := range []int{1, 2, 4, 5} {
			for i, v := range residuals[r] {
				if v != 0 {
					t.Fatalf("%s: non-leader rank %d residual[%d] = %v, want 0", codec.Name(), r, i, v)
				}
			}
		}
	}
}

// crossHostByteMesh counts payload bytes crossing host boundaries on
// BOTH lanes. Unlike an interface-embedding wrapper, it forwards the
// byte lanes explicitly — embedding would hide the base mesh's
// ByteMesh from transport.ByteLanes and silently push the compressed
// path onto its float fallback.
type crossHostByteMesh struct {
	transport.Mesh
	topo  *Topology
	cross *atomic.Int64
}

func (c *crossHostByteMesh) Send(to int, tag uint64, data []float32) error {
	if c.topo.HostOf(c.Rank()) != c.topo.HostOf(to) {
		c.cross.Add(int64(4 * len(data)))
	}
	return c.Mesh.Send(to, tag, data)
}

// SendBytes counts a crossing byte-lane frame and forwards it.
func (c *crossHostByteMesh) SendBytes(to int, tag uint64, data []byte) error {
	bm, ok := transport.ByteLanes(c.Mesh)
	if !ok {
		return fmt.Errorf("crossHostByteMesh: base mesh has no byte lanes")
	}
	if c.topo.HostOf(c.Rank()) != c.topo.HostOf(to) {
		c.cross.Add(int64(len(data)))
	}
	return bm.SendBytes(to, tag, data)
}

// RecvBytes forwards a byte-lane receive.
func (c *crossHostByteMesh) RecvBytes(from int, tag uint64) ([]byte, error) {
	bm, ok := transport.ByteLanes(c.Mesh)
	if !ok {
		return nil, fmt.Errorf("crossHostByteMesh: base mesh has no byte lanes")
	}
	return bm.RecvBytes(from, tag)
}

// HasByteLanes reports the base mesh's byte-lane support.
func (c *crossHostByteMesh) HasByteLanes() bool {
	_, ok := transport.ByteLanes(c.Mesh)
	return ok
}

// TestCompressedLeaderRingCutsCrossHostBytes is the acceptance
// criterion "compressed-hierarchical cuts cross-host bytes >= 1.9x
// (fp16) vs uncompressed hierarchical", measured at the transport
// layer: same topology, same payload, identical schedules except for
// the leader ring's representation.
func TestCompressedLeaderRingCutsCrossHostBytes(t *testing.T) {
	const world, n = 8, 64 << 10
	topo := NewTopology([]string{"a", "a", "a", "a", "b", "b", "b", "b"})
	measure := func(codec WireCodec) int64 {
		var cross atomic.Int64
		meshes := transport.NewInProcMeshes(world)
		groups := make([]ProcessGroup, world)
		for r := range groups {
			groups[r] = NewGroup(&crossHostByteMesh{Mesh: meshes[r], topo: topo, cross: &cross},
				Options{Algorithm: Hierarchical, Topology: topo})
		}
		runCollective(t, groups, func(rank int, g ProcessGroup) error {
			buf := make([]float32, n)
			for i := range buf {
				buf[i] = float32(rank) + float32(i%251)/16
			}
			res := make([]float32, n)
			return CompressedAllReduce(g, buf, Sum, codec, res).Wait()
		})
		closeAll(groups)
		return cross.Load()
	}
	plain := measure(nil)
	fp16 := measure(Float16Codec{})
	if plain == 0 || fp16 == 0 {
		t.Fatalf("no cross-host traffic measured: plain=%d fp16=%d", plain, fp16)
	}
	if ratio := float64(plain) / float64(fp16); ratio < 1.9 {
		t.Fatalf("fp16 leader ring cut cross-host bytes only %.2fx (plain %d, fp16 %d)", ratio, plain, fp16)
	}
}
