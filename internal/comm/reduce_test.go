package comm

import (
	"fmt"
	"testing"

	"repro/internal/testutil"
)

// TestParallelReduceMatchesSerial pins the determinism claim of the
// chunked fan-out: elementwise ops over disjoint chunks produce the
// same bits no matter how the slice was split.
func TestParallelReduceMatchesSerial(t *testing.T) {
	const n = reduceParallelThreshold * 3 / 2 // force the parallel path
	rng := testutil.SeededRand(t)
	src := make([]float32, n)
	base := make([]float32, n)
	for i := range src {
		src[i] = rng.Float32()*2 - 1
		base[i] = rng.Float32()*2 - 1
	}
	for _, op := range []ReduceOp{Sum, Avg, Prod, Min, Max} {
		serial := append([]float32(nil), base...)
		parallel := append([]float32(nil), base...)
		reduceRange(serial, src, op)
		reduceInto(parallel, src, op)
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("op %v: parallel fold diverges at %d: %v vs %v", op, i, parallel[i], serial[i])
			}
		}
	}
}

func TestReduceIntoSmallStaysSerialAndCorrect(t *testing.T) {
	dst := []float32{1, 2, 3}
	reduceInto(dst, []float32{10, 20, 30}, Sum)
	if dst[0] != 11 || dst[1] != 22 || dst[2] != 33 {
		t.Fatalf("small reduce wrong: %v", dst)
	}
}

// BenchmarkReduceIntoCrossover measures the serial fold against the
// chunked parallel one across sizes bracketing
// reduceParallelThreshold — the evidence behind that constant. Sizes
// below the threshold make reduceInto take the serial path, so those
// pairs should tie; above it the parallel rows should win.
func BenchmarkReduceIntoCrossover(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22} {
		dst := make([]float32, n)
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(i%97) * 0.5
		}
		b.Run(fmt.Sprintf("serial/%d", n), func(b *testing.B) {
			b.SetBytes(int64(4 * n))
			for i := 0; i < b.N; i++ {
				reduceRange(dst, src, Sum)
			}
		})
		b.Run(fmt.Sprintf("auto/%d", n), func(b *testing.B) {
			b.SetBytes(int64(4 * n))
			for i := 0; i < b.N; i++ {
				reduceInto(dst, src, Sum)
			}
		})
	}
}
