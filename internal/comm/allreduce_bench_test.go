package comm

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/transport"
)

// benchRecord is one BenchmarkAllReduceAlgorithms measurement; the
// collected set is written to BENCH_allreduce.json (see TestMain) so
// the collective layer's perf trajectory is tracked across PRs.
type benchRecord struct {
	Transport           string  `json:"transport"`
	Algorithm           string  `json:"algorithm"`
	World               int     `json:"world"`
	Elems               int     `json:"elems"`
	NsPerOp             float64 `json:"ns_per_op"`
	CrossHostBytesPerOp int64   `json:"cross_host_bytes_per_op"`
}

var (
	benchMu      sync.Mutex
	benchRecords []benchRecord
)

// TestMain exists to flush the benchmark summary: after a -bench run
// that exercised BenchmarkAllReduceAlgorithms, the records land in
// BENCH_allreduce.json (override the path with BENCH_ALLREDUCE_OUT).
// Plain `go test` runs collect nothing and write nothing.
func TestMain(m *testing.M) {
	code := m.Run()
	benchMu.Lock()
	records := benchRecords
	benchMu.Unlock()
	if len(records) > 0 {
		out := os.Getenv("BENCH_ALLREDUCE_OUT")
		if out == "" {
			out = "BENCH_allreduce.json"
		}
		if data, err := json.MarshalIndent(records, "", "  "); err == nil {
			if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "comm: writing %s: %v\n", out, err)
			}
		}
	}
	os.Exit(code)
}

// benchWorld/benchHosts: 4 ranks over 2 simulated hosts, so the
// topology-aware rows exercise real hierarchy and the cross-"host"
// byte counter has boundaries to observe — over TCP every rank is a
// loopback socket, so "host" is the simulated label, exactly like a
// single-machine rehearsal of a multi-host job.
const benchWorldSize = 4

func benchHosts() []string { return []string{"h0", "h0", "h1", "h1"} }

// BenchmarkAllReduceAlgorithms sweeps algorithm x payload size over
// in-proc and TCP meshes. Alongside ns/op it records the bytes sent
// across the simulated host boundary per op — the quantity the
// Hierarchical algorithm exists to shrink.
func BenchmarkAllReduceAlgorithms(b *testing.B) {
	sizes := []int{1 << 10, 1 << 17, 1 << 20}
	algos := []Algorithm{Ring, Tree, Naive, Hierarchical, Auto}
	for _, tr := range []string{"inproc", "tcp"} {
		for _, algo := range algos {
			for _, n := range sizes {
				name := fmt.Sprintf("%s/%s/%d", tr, algo, n)
				b.Run(name, func(b *testing.B) {
					benchAllReduce(b, tr, algo, n)
				})
			}
		}
	}
}

var benchTCPSeq atomic.Int64

// benchMeshes builds one fully-connected mesh set of benchWorldSize
// ranks over the given transport; cleanup releases what the group
// Closes do not (the TCP rendezvous store).
func benchMeshes(b *testing.B, tr string) []transport.Mesh {
	b.Helper()
	switch tr {
	case "inproc":
		return transport.NewInProcMeshes(benchWorldSize)
	case "tcp":
		st := store.NewInMem(30 * time.Second)
		b.Cleanup(func() { st.Close() })
		prefix := fmt.Sprintf("bench-%d", benchTCPSeq.Add(1))
		meshes := make([]transport.Mesh, benchWorldSize)
		errs := make([]error, benchWorldSize)
		var wg sync.WaitGroup
		for r := 0; r < benchWorldSize; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				meshes[r], errs[r] = transport.NewTCPMesh(r, benchWorldSize, st, prefix)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				b.Fatalf("tcp mesh rank %d: %v", r, err)
			}
		}
		return meshes
	default:
		b.Fatalf("unknown transport %q", tr)
		return nil
	}
}

func benchAllReduce(b *testing.B, tr string, algo Algorithm, n int) {
	topo := NewTopology(benchHosts())
	meshes := benchMeshes(b, tr)
	var cross atomic.Int64
	groups := make([]ProcessGroup, benchWorldSize)
	for r := range meshes {
		groups[r] = NewGroup(
			&countingMesh{Mesh: meshes[r], topo: topo, cross: &cross},
			Options{Algorithm: algo, Topology: topo})
	}
	defer closeAll(groups)
	bufs := make([][]float32, benchWorldSize)
	for r := range bufs {
		bufs[r] = make([]float32, n)
		for i := range bufs[r] {
			bufs[r][i] = float32(r + i)
		}
	}
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, benchWorldSize)
		for r := range groups {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				errs[r] = groups[r].AllReduce(bufs[r], Sum).Wait()
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				b.Fatalf("rank %d: %v", r, err)
			}
		}
	}
	b.StopTimer()
	crossPerOp := cross.Load() / int64(b.N)
	b.ReportMetric(float64(crossPerOp), "crossB/op")
	rec := benchRecord{
		Transport:           tr,
		Algorithm:           algo.String(),
		World:               benchWorldSize,
		Elems:               n,
		NsPerOp:             float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		CrossHostBytesPerOp: crossPerOp,
	}
	benchMu.Lock()
	// The harness re-runs each case while calibrating b.N; keep only
	// the final (longest) run per configuration.
	for i := range benchRecords {
		r := &benchRecords[i]
		if r.Transport == rec.Transport && r.Algorithm == rec.Algorithm && r.Elems == rec.Elems {
			*r = rec
			benchMu.Unlock()
			return
		}
	}
	benchRecords = append(benchRecords, rec)
	benchMu.Unlock()
}
