package comm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/testutil/leakcheck"
	"repro/internal/transport"
)

// benchSchemaVersion stamps the JSON envelope so downstream consumers
// (ci/bench_check.sh, dashboards) can detect incompatible layouts
// instead of misreading renamed fields.
const benchSchemaVersion = 2

// benchEnvelope is the stable on-disk shape of both bench JSON files:
// a version plus the record list.
type benchEnvelope struct {
	SchemaVersion int `json:"schema_version"`
	Records       any `json:"records"`
}

// benchRecord is one AllReduce benchmark measurement; the collected
// set is written to BENCH_allreduce.json at the repository root (see
// TestMain) so the collective layer's perf trajectory is tracked
// across PRs.
type benchRecord struct {
	Transport string `json:"transport"`
	Algorithm string `json:"algorithm"`
	// Codec names the wire codec when the row ran a compressed
	// collective (compressed-hierarchical rows); empty otherwise.
	Codec               string  `json:"codec,omitempty"`
	World               int     `json:"world"`
	Elems               int     `json:"elems"`
	NsPerOp             float64 `json:"ns_per_op"`
	CrossHostBytesPerOp int64   `json:"cross_host_bytes_per_op"`
	// The runtime metrics plane's view of the same ops: a summary of
	// the comm_allreduce_duration_seconds histogram restricted to this
	// run's timed loop (per-rank observations, so HistCount ≈ world ×
	// b.N). Bench rows and live /metrics scrapes thereby share one
	// schema — a dashboard percentile and a bench percentile come from
	// the identical instrument.
	HistP50Ns float64 `json:"hist_p50_ns"`
	HistP99Ns float64 `json:"hist_p99_ns"`
	HistCount uint64  `json:"hist_count"`
}

// histDelta returns the distribution observed between two snapshots of
// the same histogram (after minus before, bucket by bucket).
func histDelta(before, after metrics.HistogramSnapshot) metrics.HistogramSnapshot {
	d := metrics.HistogramSnapshot{
		Bounds: after.Bounds,
		Counts: make([]uint64, len(after.Counts)),
		Count:  after.Count - before.Count,
		Sum:    after.Sum - before.Sum,
	}
	for i := range after.Counts {
		d.Counts[i] = after.Counts[i] - before.Counts[i]
	}
	return d
}

// compressionRecord is one BenchmarkCompressedAllReduce measurement:
// the REAL bytes each codec puts on the TCP wire per op, next to the
// uncompressed Ring baseline — the ablation that replaces the
// modeled-only CompressionRatio numbers.
type compressionRecord struct {
	Codec          string  `json:"codec"`
	World          int     `json:"world"`
	Elems          int     `json:"elems"`
	NsPerOp        float64 `json:"ns_per_op"`
	WireBytesPerOp int64   `json:"wire_bytes_per_op"`
	RatioVsRing    float64 `json:"ratio_vs_ring"`
}

var (
	benchMu         sync.Mutex
	benchRecords    []benchRecord
	compressRecords []compressionRecord
)

// repoRoot walks up from the test's working directory (the package
// dir) to the directory holding go.mod, so the bench JSON lands at the
// repository root regardless of which package the bench ran in. Falls
// back to "." when no module root is found.
func repoRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

// TestMain exists to flush the benchmark summaries: after a -bench
// run, AllReduce benchmark records land in BENCH_allreduce.json and
// BenchmarkCompressedAllReduce records in BENCH_compression.json, both
// at the repository root and wrapped in a versioned schema envelope
// (override the paths with BENCH_ALLREDUCE_OUT / BENCH_COMPRESSION_OUT).
// Plain `go test` runs collect nothing and write nothing.
func TestMain(m *testing.M) {
	// leakcheck.Run wraps m.Run so a passing suite still fails when a
	// collective left a reducer or socket goroutine behind; the bench
	// JSON flush below runs either way.
	code := leakcheck.Run(m, leakcheck.Timeout(10*time.Second))
	benchMu.Lock()
	records := benchRecords
	compress := compressRecords
	benchMu.Unlock()
	flushJSON := func(envKey, fallback string, v any) {
		out := os.Getenv(envKey)
		if out == "" {
			out = filepath.Join(repoRoot(), fallback)
		}
		env := benchEnvelope{SchemaVersion: benchSchemaVersion, Records: v}
		if data, err := json.MarshalIndent(env, "", "  "); err == nil {
			if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "comm: writing %s: %v\n", out, err)
			}
		}
	}
	if len(records) > 0 {
		flushJSON("BENCH_ALLREDUCE_OUT", "BENCH_allreduce.json", records)
	}
	if len(compress) > 0 {
		flushJSON("BENCH_COMPRESSION_OUT", "BENCH_compression.json", compress)
	}
	os.Exit(code)
}

// benchWorldSize: the default sweep runs 4 ranks over 2 simulated
// hosts, so the topology-aware rows exercise real hierarchy and the
// cross-"host" byte counter has boundaries to observe — over TCP every
// rank is a loopback socket, so "host" is the simulated label, exactly
// like a single-machine rehearsal of a multi-host job.
const benchWorldSize = 4

// benchHosts lays `world` ranks out two per simulated host.
func benchHosts(world int) []string {
	hosts := make([]string, world)
	for r := range hosts {
		hosts[r] = fmt.Sprintf("h%d", r/2)
	}
	return hosts
}

// BenchmarkAllReduceAlgorithms sweeps algorithm x payload size over
// in-proc and TCP meshes. Alongside ns/op it records the bytes sent
// across the simulated host boundary per op — the quantity the
// Hierarchical algorithm exists to shrink.
func BenchmarkAllReduceAlgorithms(b *testing.B) {
	sizes := []int{1 << 10, 1 << 17, 1 << 20}
	algos := []Algorithm{Ring, Tree, DoubleTree, Naive, Hierarchical, Auto}
	for _, tr := range []string{"inproc", "tcp"} {
		for _, algo := range algos {
			for _, n := range sizes {
				name := fmt.Sprintf("%s/%s/%d", tr, algo, n)
				b.Run(name, func(b *testing.B) {
					benchAllReduce(b, tr, algo, n, benchWorldSize)
				})
			}
		}
	}
}

// BenchmarkAllReduceDeepWorld is the small-payload latency comparison
// at world 8, where the double tree's 2·ceil(log2(k+1)) hop critical
// path clearly undercuts the ring's 2(k-1) serial steps (world 4 is
// the break-even point: 6 hops either way). ci/bench_check.sh gates on
// these rows: double-tree p50 must beat Ring at <= 4Ki elements on the
// TCP mesh.
func BenchmarkAllReduceDeepWorld(b *testing.B) {
	sizes := []int{1 << 10, 1 << 12}
	for _, tr := range []string{"inproc", "tcp"} {
		for _, algo := range []Algorithm{Ring, DoubleTree} {
			for _, n := range sizes {
				name := fmt.Sprintf("%s/%s/%d", tr, algo, n)
				b.Run(name, func(b *testing.B) {
					benchAllReduce(b, tr, algo, n, 8)
				})
			}
		}
	}
}

var benchTCPSeq atomic.Int64

// benchMeshes builds one fully-connected mesh set of `world` ranks
// over the given transport; cleanup releases what the group Closes do
// not (the TCP rendezvous store).
func benchMeshes(b *testing.B, tr string, world int) []transport.Mesh {
	b.Helper()
	switch tr {
	case "inproc":
		return transport.NewInProcMeshes(world)
	case "tcp":
		st := store.NewInMem(30 * time.Second)
		b.Cleanup(func() { st.Close() })
		prefix := fmt.Sprintf("bench-%d", benchTCPSeq.Add(1))
		meshes := make([]transport.Mesh, world)
		errs := make([]error, world)
		var wg sync.WaitGroup
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				meshes[r], errs[r] = transport.NewTCPMesh(r, world, st, prefix)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				b.Fatalf("tcp mesh rank %d: %v", r, err)
			}
		}
		return meshes
	default:
		b.Fatalf("unknown transport %q", tr)
		return nil
	}
}

// recordBench appends (or, while the harness calibrates b.N, replaces)
// one row, keyed on every dimension the sweeps vary.
func recordBench(rec benchRecord) {
	benchMu.Lock()
	defer benchMu.Unlock()
	for i := range benchRecords {
		r := &benchRecords[i]
		if r.Transport == rec.Transport && r.Algorithm == rec.Algorithm &&
			r.Codec == rec.Codec && r.World == rec.World && r.Elems == rec.Elems {
			*r = rec
			return
		}
	}
	benchRecords = append(benchRecords, rec)
}

func benchAllReduce(b *testing.B, tr string, algo Algorithm, n, world int) {
	topo := NewTopology(benchHosts(world))
	meshes := benchMeshes(b, tr, world)
	var cross atomic.Int64
	groups := make([]ProcessGroup, world)
	for r := range meshes {
		groups[r] = NewGroup(
			&countingMesh{Mesh: meshes[r], topo: topo, cross: &cross},
			Options{Algorithm: algo, Topology: topo})
	}
	defer closeAll(groups)
	bufs := make([][]float32, world)
	for r := range bufs {
		bufs[r] = make([]float32, n)
		for i := range bufs[r] {
			bufs[r][i] = float32(r + i)
		}
	}
	// Resolve Auto exactly like meshGroup.AllReduce does, so the
	// snapshot delta below reads the histogram child the timed ops
	// actually observe into.
	resolved := algo
	if resolved == Auto {
		resolved = chooseAlgorithm(topo, n, world)
	}
	hist := mAllReduceDur.With(resolved.String())
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	before := hist.Snapshot()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, world)
		for r := range groups {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				errs[r] = groups[r].AllReduce(bufs[r], Sum).Wait()
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				b.Fatalf("rank %d: %v", r, err)
			}
		}
	}
	b.StopTimer()
	lat := histDelta(before, hist.Snapshot())
	crossPerOp := cross.Load() / int64(b.N)
	b.ReportMetric(float64(crossPerOp), "crossB/op")
	recordBench(benchRecord{
		Transport:           tr,
		Algorithm:           algo.String(),
		World:               world,
		Elems:               n,
		NsPerOp:             float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		CrossHostBytesPerOp: crossPerOp,
		HistP50Ns:           lat.Quantile(0.5) * 1e9,
		HistP99Ns:           lat.Quantile(0.99) * 1e9,
		HistCount:           lat.Count,
	})
}

// benchCrossHostCounter tallies the bytes this rank sends across
// simulated host boundaries, on BOTH lanes — float frames and the
// compressed byte-lane frames. The byte lane forwards explicitly:
// embedding alone would hide the base mesh's ByteMesh from
// transport.ByteLanes and silently push codecs onto the float
// fallback.
type benchCrossHostCounter struct {
	transport.Mesh
	topo  *Topology
	cross *atomic.Int64
}

func (c *benchCrossHostCounter) Send(to int, tag uint64, data []float32) error {
	if c.topo.HostOf(c.Rank()) != c.topo.HostOf(to) {
		c.cross.Add(int64(12 + 4*len(data)))
	}
	return c.Mesh.Send(to, tag, data)
}

// SendBytes counts a crossing byte-lane frame and forwards it.
func (c *benchCrossHostCounter) SendBytes(to int, tag uint64, data []byte) error {
	bm, ok := transport.ByteLanes(c.Mesh)
	if !ok {
		return fmt.Errorf("benchCrossHostCounter: base mesh has no byte lanes")
	}
	if c.topo.HostOf(c.Rank()) != c.topo.HostOf(to) {
		c.cross.Add(int64(12 + len(data)))
	}
	return bm.SendBytes(to, tag, data)
}

// RecvBytes forwards a byte-lane receive.
func (c *benchCrossHostCounter) RecvBytes(from int, tag uint64) ([]byte, error) {
	bm, ok := transport.ByteLanes(c.Mesh)
	if !ok {
		return nil, fmt.Errorf("benchCrossHostCounter: base mesh has no byte lanes")
	}
	return bm.RecvBytes(from, tag)
}

// HasByteLanes reports the base mesh's capability.
func (c *benchCrossHostCounter) HasByteLanes() bool {
	_, ok := transport.ByteLanes(c.Mesh)
	return ok
}

// BenchmarkCompressedHierarchical measures the compressed leader ring
// on a TCP mesh: 8 ranks over 4 simulated hosts, Hierarchical
// algorithm, with and without the fp16 codec on the inter-host leader
// ring. The cross-host bytes land in BENCH_allreduce.json rows (codec
// "" vs "fp16"); ci/bench_check.sh asserts their ratio matches the
// codec's 2x within 10%.
func BenchmarkCompressedHierarchical(b *testing.B) {
	const world, n = 8, 1 << 17
	for _, c := range []struct {
		name  string
		codec WireCodec
	}{{"none", nil}, {"fp16", Float16Codec{}}} {
		b.Run(fmt.Sprintf("%s/%d", c.name, n), func(b *testing.B) {
			benchCompressedHierarchical(b, c.codec, n, world)
		})
	}
}

func benchCompressedHierarchical(b *testing.B, codec WireCodec, n, world int) {
	topo := NewTopology(benchHosts(world))
	meshes := benchMeshes(b, "tcp", world)
	var cross atomic.Int64
	groups := make([]ProcessGroup, world)
	for r := range meshes {
		groups[r] = NewGroup(
			&benchCrossHostCounter{Mesh: meshes[r], topo: topo, cross: &cross},
			Options{Algorithm: Hierarchical, Topology: topo})
	}
	defer closeAll(groups)
	bufs := make([][]float32, world)
	residuals := make([][]float32, world)
	for r := range bufs {
		bufs[r] = make([]float32, n)
		residuals[r] = make([]float32, n)
		for i := range bufs[r] {
			bufs[r][i] = float32(r+i) / 7
		}
	}
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, world)
		for r := range groups {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if codec == nil {
					errs[r] = groups[r].AllReduce(bufs[r], Sum).Wait()
				} else {
					errs[r] = CompressedAllReduce(groups[r], bufs[r], Sum, codec, residuals[r]).Wait()
				}
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				b.Fatalf("rank %d: %v", r, err)
			}
		}
	}
	b.StopTimer()
	crossPerOp := cross.Load() / int64(b.N)
	b.ReportMetric(float64(crossPerOp), "crossB/op")
	codecName := ""
	if codec != nil {
		codecName = codec.Name()
	}
	recordBench(benchRecord{
		Transport:           "tcp",
		Algorithm:           Hierarchical.String(),
		Codec:               codecName,
		World:               world,
		Elems:               n,
		NsPerOp:             float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		CrossHostBytesPerOp: crossPerOp,
	})
}

// BenchmarkCompressedAllReduce sweeps codec x payload over a TCP mesh,
// counting the real bytes each op puts on the wire (headers included,
// both lanes) next to the uncompressed Ring baseline. The collected
// records land in BENCH_compression.json — the compression ablation is
// measured, not modeled.
func BenchmarkCompressedAllReduce(b *testing.B) {
	codecs := []struct {
		name  string
		codec WireCodec
	}{
		{"none", nil},
		{"fp16", Float16Codec{}},
		{"1bit", &OneBitCodec{}},
		{"topk", &TopKCodec{}},
	}
	sizes := []int{1 << 14, 1 << 17}
	// ringBytes[elems] is the measured uncompressed baseline, filled by
	// the "none" rows (which the sweep runs first) so the codec rows can
	// report a measured-vs-measured ratio.
	ringBytes := make(map[int]int64)
	for _, c := range codecs {
		for _, n := range sizes {
			b.Run(fmt.Sprintf("%s/%d", c.name, n), func(b *testing.B) {
				benchCompressed(b, c.name, c.codec, n, ringBytes)
			})
		}
	}
}

func benchCompressed(b *testing.B, name string, codec WireCodec, n int, ringBytes map[int]int64) {
	meshes := benchMeshes(b, "tcp", benchWorldSize)
	var wire atomic.Int64
	groups := make([]ProcessGroup, benchWorldSize)
	for r := range meshes {
		groups[r] = NewGroup(&benchWireCounter{Mesh: meshes[r], bytes: &wire}, Options{Algorithm: Ring})
	}
	defer closeAll(groups)
	bufs := make([][]float32, benchWorldSize)
	residuals := make([][]float32, benchWorldSize)
	for r := range bufs {
		bufs[r] = make([]float32, n)
		residuals[r] = make([]float32, n)
		for i := range bufs[r] {
			bufs[r][i] = float32(r+i) / 7
		}
	}
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, benchWorldSize)
		for r := range groups {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if codec == nil {
					errs[r] = groups[r].AllReduce(bufs[r], Sum).Wait()
				} else {
					errs[r] = CompressedAllReduce(groups[r], bufs[r], Sum, codec, residuals[r]).Wait()
				}
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				b.Fatalf("rank %d: %v", r, err)
			}
		}
	}
	b.StopTimer()
	perOp := wire.Load() / int64(b.N)
	b.ReportMetric(float64(perOp), "wireB/op")
	benchMu.Lock()
	defer benchMu.Unlock()
	if codec == nil {
		ringBytes[n] = perOp
	}
	ratio := 0.0
	if base := ringBytes[n]; base > 0 && perOp > 0 {
		ratio = float64(base) / float64(perOp)
	}
	rec := compressionRecord{
		Codec:          name,
		World:          benchWorldSize,
		Elems:          n,
		NsPerOp:        float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		WireBytesPerOp: perOp,
		RatioVsRing:    ratio,
	}
	for i := range compressRecords {
		r := &compressRecords[i]
		if r.Codec == rec.Codec && r.Elems == rec.Elems {
			*r = rec
			return
		}
	}
	compressRecords = append(compressRecords, rec)
}

// benchWireCounter counts every byte this rank puts on the wire, on
// both lanes (the bench twin of the test wireCounter, kept separate so
// the bench file stays self-contained).
type benchWireCounter struct {
	transport.Mesh
	bytes *atomic.Int64
}

func (c *benchWireCounter) Send(to int, tag uint64, data []float32) error {
	c.bytes.Add(int64(12 + 4*len(data)))
	return c.Mesh.Send(to, tag, data)
}

// SendBytes counts and forwards a byte-lane frame.
func (c *benchWireCounter) SendBytes(to int, tag uint64, data []byte) error {
	bm, ok := transport.ByteLanes(c.Mesh)
	if !ok {
		return fmt.Errorf("benchWireCounter: base mesh has no byte lanes")
	}
	c.bytes.Add(int64(12 + len(data)))
	return bm.SendBytes(to, tag, data)
}

// RecvBytes forwards a byte-lane receive.
func (c *benchWireCounter) RecvBytes(from int, tag uint64) ([]byte, error) {
	bm, ok := transport.ByteLanes(c.Mesh)
	if !ok {
		return nil, fmt.Errorf("benchWireCounter: base mesh has no byte lanes")
	}
	return bm.RecvBytes(from, tag)
}

// HasByteLanes reports the base mesh's capability.
func (c *benchWireCounter) HasByteLanes() bool {
	_, ok := transport.ByteLanes(c.Mesh)
	return ok
}
