package comm

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/transport"
)

// newRoundRobins builds each rank's RoundRobin over `sub` in-proc
// sub-groups.
func newRoundRobins(t *testing.T, world, sub int) []*RoundRobin {
	t.Helper()
	subs := make([][]ProcessGroup, sub)
	for i := range subs {
		subs[i] = NewInProcGroups(world, Options{})
	}
	rrs := make([]*RoundRobin, world)
	for r := 0; r < world; r++ {
		gs := make([]ProcessGroup, sub)
		for i := range gs {
			gs[i] = subs[i][r]
		}
		rr, err := NewRoundRobin(gs...)
		if err != nil {
			t.Fatal(err)
		}
		rrs[r] = rr
	}
	return rrs
}

// TestRoundRobinAbortUnblocksCollective: rank 0 submits an AllReduce
// its peer never matches — the paper's Section 7 deadlock. Abort must
// free it with an error instead of letting it block forever.
func TestRoundRobinAbortUnblocksCollective(t *testing.T) {
	rrs := newRoundRobins(t, 2, 2)
	defer rrs[1].Close()

	w := rrs[0].AllReduce([]float32{1, 2, 3}, Sum)
	errCh := make(chan error, 1)
	go func() { errCh <- w.Wait() }()
	time.Sleep(20 * time.Millisecond) // let it block inside the collective

	if err := rrs[0].Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("aborted collective completed without error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not unblock the collective")
	}
	// Elastic teardown calls Close after Abort; it must be a no-op.
	if err := rrs[0].Close(); err != nil {
		t.Fatalf("Close after Abort: %v", err)
	}
}

// TestRoundRobinIdempotentShutdown: repeated and interleaved
// Close/Abort calls are safe, and post-shutdown submissions fail fast
// with ErrClosed rather than panicking or hanging.
func TestRoundRobinIdempotentShutdown(t *testing.T) {
	rrs := newRoundRobins(t, 2, 3)
	defer rrs[1].Close()

	rr := rrs[0]
	if err := rr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := rr.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if err := rr.Abort(); err != nil {
		t.Fatalf("Abort after Close: %v", err)
	}
	if err := rr.AllReduce([]float32{1}, Sum).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("AllReduce after Close = %v, want ErrClosed", err)
	}
	if err := rr.Broadcast([]float32{1}, 0).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Broadcast after Close = %v, want ErrClosed", err)
	}
	if err := rr.Barrier().Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Barrier after Close = %v, want ErrClosed", err)
	}

	// Concurrent shutdown from many goroutines must not double-close
	// anything (the worker channel close would panic).
	rr2 := rrs[1]
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				_ = rr2.Close()
			} else {
				_ = rr2.Abort()
			}
		}(i)
	}
	wg.Wait()
}

// TestRoundRobinBarrierSurfacesSubGroupError: a failing sub-group must
// be reported deterministically — lowest failing index, annotated —
// not whichever worker goroutine errors first.
func TestRoundRobinBarrierSurfacesSubGroupError(t *testing.T) {
	a := NewInProcGroups(1, Options{})
	b := NewInProcGroups(1, Options{})
	rr, err := NewRoundRobin(a[0], b[0])
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()

	// Healthy barrier first.
	if err := rr.Barrier().Wait(); err != nil {
		t.Fatalf("healthy barrier: %v", err)
	}

	// Kill sub-group 1 underneath the wrapper.
	if err := b[0].Close(); err != nil {
		t.Fatal(err)
	}
	werr := rr.Barrier().Wait()
	if werr == nil {
		t.Fatal("barrier over a closed sub-group reported success")
	}
	if !errors.Is(werr, ErrClosed) {
		t.Fatalf("barrier error = %v, want to wrap ErrClosed", werr)
	}
	if !strings.Contains(werr.Error(), "sub-group 1") {
		t.Fatalf("barrier error %q does not name the failing sub-group", werr)
	}
}

// buildTCPGroups constructs a world of TCP-connected groups through a
// freshly served store, one goroutine per "process".
func buildTCPGroups(t *testing.T, world int, name string) []ProcessGroup {
	t.Helper()
	srv, err := store.ServeTCP("127.0.0.1:0", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	groups := make([]ProcessGroup, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			client, err := store.DialTCP(srv.Addr())
			if err != nil {
				errs[rank] = err
				return
			}
			groups[rank], errs[rank] = NewTCPGroup(rank, world, client, name, Options{})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return groups
}

// TestTCPGroupAbortUnblocksAllReduce: over real TCP, an AllReduce
// blocked on a peer that never submits must be freed by AbortGroup with
// an error wrapping transport.ErrAborted.
func TestTCPGroupAbortUnblocksAllReduce(t *testing.T) {
	groups := buildTCPGroups(t, 2, "abort-test")
	defer groups[1].Close()

	w := groups[0].AllReduce([]float32{1, 2, 3, 4}, Sum)
	errCh := make(chan error, 1)
	go func() { errCh <- w.Wait() }()
	time.Sleep(30 * time.Millisecond)

	if err := AbortGroup(groups[0]); err != nil {
		t.Fatalf("AbortGroup: %v", err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, transport.ErrAborted) {
			t.Fatalf("aborted AllReduce error = %v, want to wrap transport.ErrAborted", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("AbortGroup did not unblock the TCP AllReduce")
	}
}

// TestTCPGroupPeerDeathUnblocksSurvivor: the surviving rank is blocked
// mid-collective when its peer dies (abrupt connection teardown). The
// survivor must get an error promptly — not hang until some timeout.
func TestTCPGroupPeerDeathUnblocksSurvivor(t *testing.T) {
	groups := buildTCPGroups(t, 2, "death-test")

	w := groups[0].AllReduce([]float32{1, 2}, Sum)
	errCh := make(chan error, 1)
	go func() { errCh <- w.Wait() }()
	time.Sleep(30 * time.Millisecond)

	// Rank 1 "dies": its group is aborted without ever submitting the
	// matching collective, which closes its side of every connection —
	// exactly what the OS does when the process is SIGKILLed.
	if err := AbortGroup(groups[1]); err != nil {
		t.Fatalf("peer abort: %v", err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("survivor's collective completed despite dead peer")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("peer death left the survivor blocked")
	}
	if err := groups[0].Close(); err != nil {
		t.Logf("survivor close after peer death: %v", err)
	}
}
