package comm

import (
	"math"
	"sync"
	"testing"
)

func asExtended(t *testing.T, groups []ProcessGroup) []ExtendedGroup {
	t.Helper()
	out := make([]ExtendedGroup, len(groups))
	for i, g := range groups {
		eg, ok := g.(ExtendedGroup)
		if !ok {
			t.Fatalf("group %d does not implement ExtendedGroup", i)
		}
		out[i] = eg
	}
	return out
}

func TestReduceScatterSum(t *testing.T) {
	for _, world := range []int{1, 2, 3, 4, 5} {
		groups := asExtended(t, NewInProcGroups(world, Options{}))
		const chunk = 3
		outs := make([][]float32, world)
		var wg sync.WaitGroup
		errs := make([]error, world)
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				// src chunk c from rank r = 100*r + c (each element).
				src := make([]float32, world*chunk)
				for c := 0; c < world; c++ {
					for j := 0; j < chunk; j++ {
						src[c*chunk+j] = float32(100*rank + c)
					}
				}
				dst := make([]float32, chunk)
				errs[rank] = groups[rank].ReduceScatter(dst, src, Sum).Wait()
				outs[rank] = dst
			}(r)
		}
		wg.Wait()
		for rank, err := range errs {
			if err != nil {
				t.Fatalf("world %d rank %d: %v", world, rank, err)
			}
			// sum over ranks of (100*r + rank) for chunk index = rank.
			want := float32(0)
			for r := 0; r < world; r++ {
				want += float32(100*r + rank)
			}
			for j := 0; j < chunk; j++ {
				if outs[rank][j] != want {
					t.Fatalf("world %d rank %d elem %d = %v, want %v", world, rank, j, outs[rank][j], want)
				}
			}
		}
		for _, g := range groups {
			g.Close()
		}
	}
}

func TestReduceScatterAvg(t *testing.T) {
	const world = 4
	groups := asExtended(t, NewInProcGroups(world, Options{}))
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	outs := make([][]float32, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			src := make([]float32, world)
			for c := range src {
				src[c] = float32(rank)
			}
			dst := make([]float32, 1)
			if err := groups[rank].ReduceScatter(dst, src, Avg).Wait(); err != nil {
				t.Error(err)
			}
			outs[rank] = dst
		}(r)
	}
	wg.Wait()
	for rank := 0; rank < world; rank++ {
		if math.Abs(float64(outs[rank][0]-1.5)) > 1e-6 {
			t.Fatalf("rank %d avg = %v, want 1.5", rank, outs[rank][0])
		}
	}
}

func TestReduceScatterSizeValidation(t *testing.T) {
	groups := asExtended(t, NewInProcGroups(2, Options{}))
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	if err := groups[0].ReduceScatter(make([]float32, 3), make([]float32, 5), Sum).Wait(); err == nil {
		t.Fatal("mismatched sizes must error")
	}
}

func TestGatherToEachRoot(t *testing.T) {
	const world = 3
	for root := 0; root < world; root++ {
		groups := asExtended(t, NewInProcGroups(world, Options{}))
		collected := make([][][]float32, world)
		var wg sync.WaitGroup
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				var dst [][]float32
				if rank == root {
					dst = make([][]float32, world)
					for i := range dst {
						dst[i] = make([]float32, 2)
					}
				}
				src := []float32{float32(rank), float32(rank * 2)}
				if err := groups[rank].Gather(dst, src, root).Wait(); err != nil {
					t.Error(err)
				}
				collected[rank] = dst
			}(r)
		}
		wg.Wait()
		for peer := 0; peer < world; peer++ {
			got := collected[root][peer]
			if got[0] != float32(peer) || got[1] != float32(peer*2) {
				t.Fatalf("root %d slot %d = %v", root, peer, got)
			}
		}
		for _, g := range groups {
			g.Close()
		}
	}
}

func TestScatterFromRoot(t *testing.T) {
	const world = 4
	groups := asExtended(t, NewInProcGroups(world, Options{}))
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	received := make([][]float32, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var src [][]float32
			if rank == 1 { // root
				src = make([][]float32, world)
				for i := range src {
					src[i] = []float32{float32(10 * i)}
				}
			}
			dst := make([]float32, 1)
			if err := groups[rank].Scatter(dst, src, 1).Wait(); err != nil {
				t.Error(err)
			}
			received[rank] = dst
		}(r)
	}
	wg.Wait()
	for rank := 0; rank < world; rank++ {
		if received[rank][0] != float32(10*rank) {
			t.Fatalf("rank %d got %v, want %v", rank, received[rank][0], 10*rank)
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	// scatter(x) then gather must reassemble x at the root.
	const world = 3
	groups := asExtended(t, NewInProcGroups(world, Options{}))
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	original := [][]float32{{1, 2}, {3, 4}, {5, 6}}
	result := make([][]float32, world)
	for i := range result {
		result[i] = make([]float32, 2)
	}
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			dst := make([]float32, 2)
			var src [][]float32
			if rank == 0 {
				src = original
			}
			if err := groups[rank].Scatter(dst, src, 0).Wait(); err != nil {
				t.Error(err)
				return
			}
			var gatherDst [][]float32
			if rank == 0 {
				gatherDst = result
			}
			if err := groups[rank].Gather(gatherDst, dst, 0).Wait(); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	for i := range original {
		for j := range original[i] {
			if result[i][j] != original[i][j] {
				t.Fatalf("round trip mangled slot %d: %v vs %v", i, result[i], original[i])
			}
		}
	}
}

func TestAllToAll(t *testing.T) {
	const world = 4
	groups := asExtended(t, NewInProcGroups(world, Options{}))
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	results := make([][]float32, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			// src chunk j = 10*rank + j.
			src := make([]float32, world*2)
			for j := 0; j < world; j++ {
				src[2*j] = float32(10*rank + j)
				src[2*j+1] = float32(10*rank + j)
			}
			dst := make([]float32, world*2)
			if err := groups[rank].AllToAll(dst, src).Wait(); err != nil {
				t.Error(err)
			}
			results[rank] = dst
		}(r)
	}
	wg.Wait()
	// dst chunk j on rank r = rank j's chunk r = 10*j + r.
	for rank := 0; rank < world; rank++ {
		for j := 0; j < world; j++ {
			want := float32(10*j + rank)
			if results[rank][2*j] != want || results[rank][2*j+1] != want {
				t.Fatalf("rank %d chunk %d = %v, want %v", rank, j, results[rank][2*j], want)
			}
		}
	}
}

func TestAllToAllValidation(t *testing.T) {
	groups := asExtended(t, NewInProcGroups(2, Options{}))
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	if err := groups[0].AllToAll(make([]float32, 3), make([]float32, 3)).Wait(); err == nil {
		t.Fatal("non-divisible buffer must error")
	}
	if err := groups[0].AllToAll(make([]float32, 2), make([]float32, 4)).Wait(); err == nil {
		t.Fatal("mismatched buffer lengths must error")
	}
}

func TestExtendedInvalidRoots(t *testing.T) {
	groups := asExtended(t, NewInProcGroups(2, Options{}))
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	if err := groups[0].Gather(nil, []float32{1}, 7).Wait(); err == nil {
		t.Fatal("gather with bad root must error")
	}
	if err := groups[0].Scatter(make([]float32, 1), nil, -1).Wait(); err == nil {
		t.Fatal("scatter with bad root must error")
	}
}
