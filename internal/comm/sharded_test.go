package comm

import (
	"fmt"
	"sync"
	"testing"
)

func asSharded(t *testing.T, groups []ProcessGroup) []ShardedGroup {
	t.Helper()
	out := make([]ShardedGroup, len(groups))
	for i, g := range groups {
		sg, ok := g.(ShardedGroup)
		if !ok {
			t.Fatalf("group %d does not implement ShardedGroup", i)
		}
		out[i] = sg
	}
	return out
}

// shardedInput is a deterministic per-rank vector with an uneven tail
// (n deliberately not divisible by most world sizes).
func shardedInput(rank, n int) []float32 {
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(rank+1)*0.5 + float32(i)*0.25
	}
	return data
}

// TestReduceScatterVBitwiseMatchesAllReduce is the contract fsdp's
// bitwise guarantee rests on: the owned chunk after ReduceScatterV is
// bitwise what a ring AllReduce leaves there, for every world size and
// an uneven chunk tail, for Sum and Avg.
func TestReduceScatterVBitwiseMatchesAllReduce(t *testing.T) {
	const n = 103
	for _, world := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		for _, op := range []ReduceOp{Sum, Avg} {
			groups := asSharded(t, NewInProcGroups(world, Options{Algorithm: Ring}))
			ref := make([][]float32, world)
			rs := make([][]float32, world)
			var wg sync.WaitGroup
			errs := make([]error, world)
			for r := 0; r < world; r++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					a := shardedInput(rank, n)
					b := append([]float32(nil), a...)
					if err := groups[rank].AllReduce(a, op).Wait(); err != nil {
						errs[rank] = err
						return
					}
					errs[rank] = groups[rank].ReduceScatterV(b, op).Wait()
					ref[rank], rs[rank] = a, b
				}(r)
			}
			wg.Wait()
			for rank, err := range errs {
				if err != nil {
					t.Fatalf("world %d op %v rank %d: %v", world, op, rank, err)
				}
				lo, hi := ChunkBounds(n, world, rank)
				for i := lo; i < hi; i++ {
					if rs[rank][i] != ref[rank][i] {
						t.Fatalf("world %d op %v rank %d elem %d: reduce-scatter %v != allreduce %v",
							world, op, rank, i, rs[rank][i], ref[rank][i])
					}
				}
			}
			for _, g := range groups {
				g.Close()
			}
		}
	}
}

// TestAllGatherVDistributesOwnedChunks: after AllGatherV every rank
// holds every owner's chunk verbatim.
func TestAllGatherVDistributesOwnedChunks(t *testing.T) {
	const n = 29
	for _, world := range []int{1, 2, 3, 5, 8} {
		groups := asSharded(t, NewInProcGroups(world, Options{}))
		outs := make([][]float32, world)
		var wg sync.WaitGroup
		errs := make([]error, world)
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				data := make([]float32, n)
				lo, hi := ChunkBounds(n, world, rank)
				for i := lo; i < hi; i++ {
					data[i] = float32(1000*rank + i)
				}
				errs[rank] = groups[rank].AllGatherV(data).Wait()
				outs[rank] = data
			}(r)
		}
		wg.Wait()
		for rank, err := range errs {
			if err != nil {
				t.Fatalf("world %d rank %d: %v", world, rank, err)
			}
			for owner := 0; owner < world; owner++ {
				lo, hi := ChunkBounds(n, world, owner)
				for i := lo; i < hi; i++ {
					if want := float32(1000*owner + i); outs[rank][i] != want {
						t.Fatalf("world %d rank %d elem %d = %v, want %v", world, rank, i, outs[rank][i], want)
					}
				}
			}
		}
		for _, g := range groups {
			g.Close()
		}
	}
}

// TestReduceScatterVThenAllGatherVEqualsAllReduce composes the two
// halves back into a full AllReduce, bitwise, on every rank.
func TestReduceScatterVThenAllGatherVEqualsAllReduce(t *testing.T) {
	const n = 67
	const world = 6
	groups := asSharded(t, NewInProcGroups(world, Options{Algorithm: Ring}))
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	var wg sync.WaitGroup
	fails := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			a := shardedInput(rank, n)
			b := append([]float32(nil), a...)
			if err := groups[rank].AllReduce(a, Avg).Wait(); err != nil {
				fails[rank] = err
				return
			}
			if err := groups[rank].ReduceScatterV(b, Avg).Wait(); err != nil {
				fails[rank] = err
				return
			}
			if err := groups[rank].AllGatherV(b).Wait(); err != nil {
				fails[rank] = err
				return
			}
			for i := range a {
				if a[i] != b[i] {
					fails[rank] = fmt.Errorf("elem %d: composed %v != allreduce %v", i, b[i], a[i])
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for rank, err := range fails {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestCompressedReduceScatterVRankOrderFold checks the compressed
// sharded reduce-scatter against a locally computed oracle: each
// contribution quantized through the codec once, folded in rank order,
// exactly — and the sender-side residuals hold the quantization error
// of this rank's own contribution.
func TestCompressedReduceScatterVRankOrderFold(t *testing.T) {
	const n = 37
	const world = 3
	codec := Float16Codec{}
	groups := asSharded(t, NewInProcGroups(world, Options{}))
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	inputs := make([][]float32, world)
	for r := range inputs {
		inputs[r] = shardedInput(r, n)
	}
	// Oracle: decode(encode(chunk)) per contribution, folded in rank
	// order, scaled by 1/world (Avg).
	want := make([]float32, n)
	for r := 0; r < world; r++ {
		rt := make([]float32, n)
		copy(rt, inputs[r])
		if err := quantizeThrough(codec, rt, nil); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if r == 0 {
				want[i] = rt[i]
			} else {
				want[i] += rt[i]
			}
		}
	}
	for i := range want {
		want[i] /= world
	}

	outs := make([][]float32, world)
	res := make([][]float32, world)
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			data := append([]float32(nil), inputs[rank]...)
			residual := make([]float32, n)
			errs[rank] = groups[rank].CompressedReduceScatterV(data, Avg, codec, residual).Wait()
			outs[rank], res[rank] = data, residual
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		lo, hi := ChunkBounds(n, world, rank)
		for i := lo; i < hi; i++ {
			if outs[rank][i] != want[i] {
				t.Fatalf("rank %d elem %d = %v, want %v", rank, i, outs[rank][i], want[i])
			}
		}
		// Error feedback: residual = original - decode(encode(original)).
		rt := append([]float32(nil), inputs[rank]...)
		if err := quantizeThrough(codec, rt, nil); err != nil {
			t.Fatal(err)
		}
		for i := range rt {
			if want := inputs[rank][i] - rt[i]; res[rank][i] != want {
				t.Fatalf("rank %d residual %d = %v, want %v", rank, i, res[rank][i], want)
			}
		}
	}
}

// TestHierarchicalReduceScatterMatchesFlat: with integer-valued inputs
// (exact float sums in any fold order) the hierarchical submesh path
// must produce exactly the flat ring's chunks, on a 2-hosts-of-4
// topology at world 8.
func TestHierarchicalReduceScatterMatchesFlat(t *testing.T) {
	const world = 8
	const chunk = 5
	topo := NewTopology([]string{"h0", "h0", "h0", "h0", "h1", "h1", "h1", "h1"})
	flat := asExtended(t, NewInProcGroups(world, Options{Algorithm: Ring}))
	hier := asExtended(t, NewInProcGroups(world, Options{Algorithm: Hierarchical, Topology: topo}))
	defer func() {
		for i := range flat {
			flat[i].Close()
			hier[i].Close()
		}
	}()
	for _, op := range []ReduceOp{Sum, Avg} {
		outF := make([][]float32, world)
		outH := make([][]float32, world)
		var wg sync.WaitGroup
		errs := make([]error, world)
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				src := make([]float32, world*chunk)
				for i := range src {
					src[i] = float32((rank*31 + i*7) % 64)
				}
				df := make([]float32, chunk)
				dh := make([]float32, chunk)
				if err := flat[rank].ReduceScatter(df, src, op).Wait(); err != nil {
					errs[rank] = err
					return
				}
				errs[rank] = hier[rank].ReduceScatter(dh, src, op).Wait()
				outF[rank], outH[rank] = df, dh
			}(r)
		}
		wg.Wait()
		for rank, err := range errs {
			if err != nil {
				t.Fatalf("op %v rank %d: %v", op, rank, err)
			}
			for i := range outF[rank] {
				if outF[rank][i] != outH[rank][i] {
					t.Fatalf("op %v rank %d elem %d: hierarchical %v != flat %v",
						op, rank, i, outH[rank][i], outF[rank][i])
				}
			}
		}
	}
}
