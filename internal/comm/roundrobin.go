package comm

import (
	"fmt"
	"sync"
)

// RoundRobin is the composite ProcessGroup of Section 5.4: it dispatches
// successive collectives to a list of sub-groups in round-robin order,
// working around per-group concurrency limits (one worker goroutine per
// group here; one set of NCCL streams or Gloo threads in the paper) so
// that multiple buckets' AllReduces genuinely proceed in parallel.
//
// Every rank must construct the RoundRobin wrapper over sub-groups in
// the same order; the shared dispatch counter then stays aligned across
// ranks because all ranks submit collectives in the same order.
type RoundRobin struct {
	groups []ProcessGroup

	mu   sync.Mutex
	next int
}

// NewRoundRobin composes sub-groups into a round-robin group. All
// sub-groups must have the same rank and size.
func NewRoundRobin(groups ...ProcessGroup) (*RoundRobin, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("comm: round-robin needs at least one group")
	}
	for _, g := range groups[1:] {
		if g.Rank() != groups[0].Rank() || g.Size() != groups[0].Size() {
			return nil, fmt.Errorf("comm: round-robin sub-groups disagree on rank/size")
		}
	}
	return &RoundRobin{groups: groups}, nil
}

// NumGroups returns the number of sub-groups being rotated over.
func (r *RoundRobin) NumGroups() int { return len(r.groups) }

func (r *RoundRobin) pick() ProcessGroup {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.groups[r.next]
	r.next = (r.next + 1) % len(r.groups)
	return g
}

// Rank returns the shared rank of the sub-groups.
func (r *RoundRobin) Rank() int { return r.groups[0].Rank() }

// Size returns the shared size of the sub-groups.
func (r *RoundRobin) Size() int { return r.groups[0].Size() }

// AllReduce dispatches to the next sub-group.
func (r *RoundRobin) AllReduce(data []float32, op ReduceOp) Work {
	return r.pick().AllReduce(data, op)
}

// Broadcast dispatches to the next sub-group.
func (r *RoundRobin) Broadcast(data []float32, root int) Work {
	return r.pick().Broadcast(data, root)
}

// AllGather dispatches to the next sub-group.
func (r *RoundRobin) AllGather(dst [][]float32, src []float32) Work {
	return r.pick().AllGather(dst, src)
}

// Barrier synchronizes through every sub-group so no in-flight work on
// any of them can cross the barrier.
func (r *RoundRobin) Barrier() Work {
	works := make([]Work, len(r.groups))
	for i, g := range r.groups {
		works[i] = g.Barrier()
	}
	w := newPendingWork()
	go func() { w.finish(WaitAll(works...)) }()
	return w
}

// Close closes every sub-group.
func (r *RoundRobin) Close() error {
	var first error
	for _, g := range r.groups {
		if err := g.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var _ ProcessGroup = (*RoundRobin)(nil)
