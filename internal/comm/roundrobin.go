package comm

import (
	"fmt"
	"sync"
)

// RoundRobin is the composite ProcessGroup of Section 5.4: it dispatches
// successive collectives to a list of sub-groups in round-robin order,
// working around per-group concurrency limits (one worker goroutine per
// group here; one set of NCCL streams or Gloo threads in the paper) so
// that multiple buckets' AllReduces genuinely proceed in parallel.
//
// Every rank must construct the RoundRobin wrapper over sub-groups in
// the same order; the shared dispatch counter then stays aligned across
// ranks because all ranks submit collectives in the same order.
//
// RoundRobin implements Aborter by fanning out to every sub-group, so
// elastic recovery can tear down a multi-mesh generation exactly like a
// single-mesh one. Abort and Close are idempotent and may be called in
// either order (elastic teardown calls both).
type RoundRobin struct {
	groups []ProcessGroup

	mu     sync.Mutex
	next   int
	closed bool
}

// NewRoundRobin composes sub-groups into a round-robin group. All
// sub-groups must have the same rank and size.
func NewRoundRobin(groups ...ProcessGroup) (*RoundRobin, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("comm: round-robin needs at least one group")
	}
	for _, g := range groups[1:] {
		if g.Rank() != groups[0].Rank() || g.Size() != groups[0].Size() {
			return nil, fmt.Errorf("comm: round-robin sub-groups disagree on rank/size")
		}
	}
	return &RoundRobin{groups: groups}, nil
}

// NumGroups returns the number of sub-groups being rotated over.
func (r *RoundRobin) NumGroups() int { return len(r.groups) }

// pick advances the dispatch counter and returns the next sub-group,
// or nil after Close/Abort (submissions then fail with ErrClosed
// rather than racing the teardown).
func (r *RoundRobin) pick() ProcessGroup {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	g := r.groups[r.next]
	r.next = (r.next + 1) % len(r.groups)
	return g
}

// Rank returns the shared rank of the sub-groups.
func (r *RoundRobin) Rank() int { return r.groups[0].Rank() }

// Size returns the shared size of the sub-groups.
func (r *RoundRobin) Size() int { return r.groups[0].Size() }

// AllReduce dispatches to the next sub-group.
func (r *RoundRobin) AllReduce(data []float32, op ReduceOp) Work {
	g := r.pick()
	if g == nil {
		return CompletedWork(ErrClosed)
	}
	return g.AllReduce(data, op)
}

// Broadcast dispatches to the next sub-group.
func (r *RoundRobin) Broadcast(data []float32, root int) Work {
	g := r.pick()
	if g == nil {
		return CompletedWork(ErrClosed)
	}
	return g.Broadcast(data, root)
}

// AllGather dispatches to the next sub-group.
func (r *RoundRobin) AllGather(dst [][]float32, src []float32) Work {
	g := r.pick()
	if g == nil {
		return CompletedWork(ErrClosed)
	}
	return g.AllGather(dst, src)
}

// Barrier synchronizes through every sub-group so no in-flight work on
// any of them can cross the barrier. Errors surface deterministically:
// every sub-group's barrier is waited on, and the reported error is the
// one from the lowest-indexed failing sub-group, annotated with its
// index — identical on every rank and across runs regardless of which
// sub-group worker loses the race to fail first.
func (r *RoundRobin) Barrier() Work {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return CompletedWork(ErrClosed)
	}
	groups := r.groups
	r.mu.Unlock()
	works := make([]Work, len(groups))
	for i, g := range groups {
		works[i] = g.Barrier()
	}
	w := newPendingWork()
	go func() {
		var first error
		for i, sub := range works {
			if err := sub.Wait(); err != nil && first == nil {
				first = fmt.Errorf("comm: round-robin sub-group %d: %w", i, err)
			}
		}
		w.finish(first)
	}()
	return w
}

// shutdown marks the wrapper closed and returns the sub-groups to tear
// down, or nil when a previous Close/Abort already did.
func (r *RoundRobin) shutdown() []ProcessGroup {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	return r.groups
}

// Close closes every sub-group, waiting for their in-flight collectives
// to finish. Safe after Abort (a no-op then) and under repeated calls.
func (r *RoundRobin) Close() error {
	var first error
	for _, g := range r.shutdown() {
		if err := g.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Abort cancels every sub-group, freeing collectives blocked on dead
// peers (comm.AbortGroup on each, so TCP sub-meshes get the
// deadline+close treatment). Idempotent, and Close afterwards is a
// no-op — elastic teardown calls both in sequence.
func (r *RoundRobin) Abort() error {
	var first error
	for _, g := range r.shutdown() {
		if err := AbortGroup(g); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var _ ProcessGroup = (*RoundRobin)(nil)
var _ Aborter = (*RoundRobin)(nil)
