package comm_test

import (
	"fmt"
	"sync"

	"repro/internal/comm"
)

// ExampleProcessGroup shows the asynchronous collective API: AllReduce
// returns a Work handle immediately, so callers can overlap computation
// with communication — the property DDP's bucket overlap is built on.
func ExampleProcessGroup() {
	const world = 3
	groups := comm.NewInProcGroups(world, comm.Options{Algorithm: comm.Ring})
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()

	results := make([]float32, world)
	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			data := []float32{float32(rank + 1)} // 1, 2, 3
			work := groups[rank].AllReduce(data, comm.Sum)
			// ... other computation could run here ...
			if err := work.Wait(); err != nil {
				panic(err)
			}
			results[rank] = data[0]
		}(rank)
	}
	wg.Wait()
	fmt.Println("sum on every rank:", results)
	// Output: sum on every rank: [6 6 6]
}

// ExampleNewRoundRobin composes sub-groups so successive collectives
// rotate across them (paper Section 5.4).
func ExampleNewRoundRobin() {
	const world = 2
	a := comm.NewInProcGroups(world, comm.Options{})
	b := comm.NewInProcGroups(world, comm.Options{})

	rrs := make([]comm.ProcessGroup, world)
	for r := 0; r < world; r++ {
		rr, err := comm.NewRoundRobin(a[r], b[r])
		if err != nil {
			panic(err)
		}
		rrs[r] = rr
	}
	defer func() {
		for _, g := range rrs {
			g.Close()
		}
	}()

	sums := make([][]float32, world)
	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			// Two collectives land on the two different sub-groups.
			x := []float32{1}
			y := []float32{10}
			w1 := rrs[rank].AllReduce(x, comm.Sum)
			w2 := rrs[rank].AllReduce(y, comm.Sum)
			if err := comm.WaitAll(w1, w2); err != nil {
				panic(err)
			}
			sums[rank] = []float32{x[0], y[0]}
		}(rank)
	}
	wg.Wait()
	fmt.Println(sums[0])
	// Output: [2 20]
}
