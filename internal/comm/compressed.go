package comm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/transport"
)

// GradientCompressor is implemented by process groups whose AllReduce
// can ship a codec's byte representation on the wire instead of full
// float32 frames (Section 6.2.3 made real: the byte savings exist on
// the sockets, not just in the simulator's cost model). meshGroup and
// RoundRobin implement it; CompressedAllReduce is the capability-probing
// entry point callers (DDP) should use.
type GradientCompressor interface {
	// CompressedAllReduce reduces data in place across all ranks like
	// AllReduce, quantizing through codec. residual is nil or a
	// caller-owned error-feedback accumulator of len(data), updated
	// during execution (read it only after Wait).
	CompressedAllReduce(data []float32, op ReduceOp, codec WireCodec, residual []float32) Work
}

// CompressedAllReduce reduces data across pg through codec's compressed
// representation, shipping real bytes when the group supports it
// (GradientCompressor over a byte-lane transport) and degrading to
// quantize-then-AllReduce otherwise. The two paths are NOT numerically
// interchangeable: the wire path quantizes twice (each rank's
// contribution, then the reduced chunk before the all-gather), while
// the fallback quantizes once and reduces exactly in float32 — both
// converge under error feedback, but runs on byte-lane and float-only
// transports follow different trajectories, like switching AllReduce
// algorithms does. residual enables error feedback; see WireCodec.
// Like AllReduce, every rank must submit the same collectives in the
// same order, and all ranks finish with bitwise-identical data.
//
// The compressed schedule is topology-aware: a group configured (or
// Auto-resolved) to Hierarchical with a hierarchical topology runs the
// COMPRESSED LEADER RING — exact float32 reduce/broadcast within each
// host (and each level of a structured topology), with only the
// outermost leader ring riding the codec's byte lanes — compression
// exactly where bytes are expensive. Every other configuration takes
// the flat compressed reduce-scatter/all-gather.
func CompressedAllReduce(pg ProcessGroup, data []float32, op ReduceOp, codec WireCodec, residual []float32) Work {
	if codec == nil {
		return pg.AllReduce(data, op)
	}
	if gc, ok := pg.(GradientCompressor); ok {
		return gc.CompressedAllReduce(data, op, codec, residual)
	}
	// Generic fallback: quantize in place, reduce exactly. The residual
	// is committed only if the AllReduce succeeds (see the meshGroup
	// method for why a failed collective must not update it).
	var pre []float32
	if residual != nil {
		pre = append([]float32(nil), residual...)
	}
	if err := quantizeThrough(codec, data, residual); err != nil {
		if residual != nil {
			copy(residual, pre)
		}
		return CompletedWork(err)
	}
	w := pg.AllReduce(data, op)
	if residual == nil {
		return w
	}
	return &residualGuard{inner: w, residual: residual, pre: pre}
}

// residualGuard rolls a residual vector back to its pre-collective
// contents when the wrapped Work fails.
type residualGuard struct {
	inner    Work
	once     sync.Once
	residual []float32
	pre      []float32
	err      error
}

// Wait reports the wrapped collective's result, undoing the residual
// update on failure.
func (w *residualGuard) Wait() error {
	w.once.Do(func() {
		w.err = w.inner.Wait()
		if w.err != nil {
			copy(w.residual, w.pre)
		}
	})
	return w.err
}

// CompressedAllReduce implements GradientCompressor on the mesh-backed
// group: the collective executes on the group's worker in submission
// order, exactly like AllReduce.
//
// Residual updates are transactional: the collective runs against a
// shadow copy that is committed only on success. A collective aborted
// mid-flight (the elastic failure path) transmitted nothing, so the
// residual must not claim it did — a half-updated accumulator would
// skew every subsequent gradient, and nondeterministically, since the
// abort point depends on timing.
func (g *meshGroup) CompressedAllReduce(data []float32, op ReduceOp, codec WireCodec, residual []float32) Work {
	if codec == nil {
		return g.AllReduce(data, op)
	}
	if residual != nil && len(residual) != len(data) {
		return CompletedWork(fmt.Errorf("comm: residual has %d elements for %d data elements", len(residual), len(data)))
	}
	// The float fallback (byte-lane-less mesh, or Min/Max/Prod) honors
	// the group's configured algorithm and topology exactly like
	// AllReduce, instead of hard-coding Ring.
	algo := g.opts.Algorithm
	if algo == Auto {
		algo = chooseAlgorithm(g.topo, len(data), g.mesh.Size())
	}
	return g.submitN(algoTags(algo), func(tag uint64) error {
		start := time.Now()
		shadow := residual
		if residual != nil {
			shadow = append([]float32(nil), residual...)
		}
		wire, err := compressedAllReduce(g.mesh, tag, data, op, codec, shadow, algo, g.topo)
		if err != nil {
			return err
		}
		if residual != nil {
			copy(residual, shadow)
		}
		observeAllReduce("compressed", len(data), start, nil)
		if wire > 0 {
			mCompressedWireBytes.With(codec.Name()).Observe(float64(wire))
		}
		return nil
	})
}

// CompressedAllReduce dispatches to the next sub-group, using its
// wire-level path when available (GradientCompressor on RoundRobin).
func (r *RoundRobin) CompressedAllReduce(data []float32, op ReduceOp, codec WireCodec, residual []float32) Work {
	g := r.pick()
	if g == nil {
		return CompletedWork(ErrClosed)
	}
	return CompressedAllReduce(g, data, op, codec, residual)
}

// quantizeThrough applies codec's wire round trip to data in place —
// the degradation a compressed transfer would have produced — updating
// residual under error feedback.
func quantizeThrough(codec WireCodec, data, residual []float32) error {
	if len(data) == 0 {
		return nil
	}
	frame := codec.Encode(make([]byte, 0, codec.EncodedSize(len(data))), data, residual)
	if err := codec.Decode(frame, data); err != nil {
		return fmt.Errorf("comm: codec %s round trip: %w", codec.Name(), err)
	}
	return nil
}

// compressedAllReduce is the wire-level compressed AllReduce: a
// reduce-scatter + all-gather in which every frame is the codec's byte
// representation riding the transport's byte lanes.
//
// Stage 1 (compressed reduce-scatter): the buffer is split into k
// chunks, chunk j owned by rank j. Every rank encodes each chunk — with
// its slice of the error-feedback residual — and sends frame j to rank
// j. The owner decodes all k contributions (its own included, so every
// contribution passes through the same quantization) and folds them in
// rank order.
//
// Stage 2 (compressed all-gather): each owner re-encodes its reduced
// chunk (no residual: this second quantization is of the already-
// reduced sum) and broadcasts the frame; every rank — the owner too —
// decodes the identical bytes, so all ranks finish bitwise-identical,
// the invariant DDP's replica consistency rests on.
//
// Per rank the wire carries 2(k-1) compressed chunk frames instead of
// the flat ring's 2(k-1) float32 chunks: the full codec ratio, minus
// headers.
//
// Falls back to quantize-then-AllReduce (under the caller's configured
// algorithm) when the mesh has no byte lanes or when the op is not
// Sum/Avg — decode-reduce-reencode of Min/Max/Prod through a lossy
// representation compounds unpredictably, so those take the exact
// float path on quantized inputs.
//
// The int result is the number of encoded payload bytes this rank put
// on the byte lanes (0 on the float fallback paths) — the sample the
// comm_compressed_wire_bytes histogram records.
func compressedAllReduce(m transport.Mesh, tag uint64, data []float32, op ReduceOp, codec WireCodec, residual []float32, algo Algorithm, topo *Topology) (int, error) {
	k := m.Size()
	if k == 1 {
		// Quantization must not depend on world size: a single rank
		// still pays the codec's accuracy cost (and keeps its residual
		// trajectory comparable to any other world's).
		return 0, quantizeThrough(codec, data, residual)
	}
	bm, haveBytes := transport.ByteLanes(m)
	if !haveBytes || (op != Sum && op != Avg) {
		if err := quantizeThrough(codec, data, residual); err != nil {
			return 0, err
		}
		switch algo {
		case Tree:
			return 0, treeAllReduce(m, tag, data, op)
		case Naive:
			return 0, naiveAllReduce(m, tag, data, op)
		case Hierarchical:
			_, err := hierarchicalAllReduce(m, tag, data, op, topo, nil, nil)
			return 0, err
		case DoubleTree:
			// The caller reserved two tags for DoubleTree (algoTags).
			return 0, doubleTreeAllReduce(m, tag, tag+1, data, op)
		default:
			return 0, ringAllReduce(m, tag, data, op)
		}
	}

	// Compressed leader ring: with a hierarchical topology, keep the
	// intra-host (and intra-level) phases exact and compress only the
	// outermost leader ring, where every byte crosses the network.
	if algo == Hierarchical && topo != nil && topo.Size() == k && topo.Hierarchical() {
		return hierarchicalAllReduce(m, tag, data, op, topo, codec, residual)
	}

	rank := m.Rank()
	n := len(data)

	acc, wire, err := compressedReduceScatterChunks(m, bm, tag, data, codec, residual)
	if err != nil {
		return 0, err
	}
	lo, hi := chunkBounds(n, k, rank)

	// Stage 2: broadcast the re-encoded reduced chunk; decode everyone's
	// (own included — all ranks must hold the decode of the same bytes).
	reduced := codec.Encode(make([]byte, 0, codec.EncodedSize(hi-lo)), acc, nil)
	wire += (k - 1) * len(reduced)
	errcs := make([]<-chan error, 0, k-1)
	for j := 0; j < k; j++ {
		if j != rank {
			errcs = append(errcs, sendBytesAsync(bm, j, tag, reduced))
		}
	}
	if err := codec.Decode(reduced, data[lo:hi]); err != nil {
		return 0, fmt.Errorf("comm: decoding own reduced chunk: %w", err)
	}
	for r := 0; r < k; r++ {
		if r == rank {
			continue
		}
		frame, err := bm.RecvBytes(r, tag)
		if err != nil {
			return 0, err
		}
		rlo, rhi := chunkBounds(n, k, r)
		if err := codec.Decode(frame, data[rlo:rhi]); err != nil {
			return 0, fmt.Errorf("comm: decoding reduced chunk from rank %d: %w", r, err)
		}
	}
	for _, errc := range errcs {
		if err := <-errc; err != nil {
			return 0, err
		}
	}

	if op == Avg {
		scale := 1 / float32(k)
		for i := range data {
			data[i] *= scale
		}
	}
	return wire, nil
}

// compressedReduceScatterChunks is stage 1 of the compressed schedule —
// a compressed reduce-scatter over chunkBounds chunks: every rank
// encodes each chunk of data (with its slice of the error-feedback
// residual) and ships frame j to rank j; the owner decodes all k
// contributions (its own included, so every contribution passes through
// the same quantization) and folds them in rank order.
//
// It returns the EXACT float32 fold of the decoded contributions for
// this rank's own chunk — the caller decides whether to re-quantize it
// (compressedAllReduce's stage 2) or consume it exactly (the ZeRO-2/3
// gradient-shard path, where the reduced chunk feeds the local
// optimizer shard and is never re-broadcast) — plus the encoded payload
// bytes this rank put on the byte lanes. data itself is not modified.
func compressedReduceScatterChunks(m transport.Mesh, bm transport.ByteMesh, tag uint64, data []float32, codec WireCodec, residual []float32) ([]float32, int, error) {
	k := m.Size()
	rank := m.Rank()
	n := len(data)
	wire := 0

	encs := make([][]byte, k)
	for j := 0; j < k; j++ {
		lo, hi := chunkBounds(n, k, j)
		var res []float32
		if residual != nil {
			res = residual[lo:hi]
		}
		encs[j] = codec.Encode(make([]byte, 0, codec.EncodedSize(hi-lo)), data[lo:hi], res)
	}
	errcs := make([]<-chan error, 0, k-1)
	for j := 0; j < k; j++ {
		if j != rank {
			wire += len(encs[j])
			errcs = append(errcs, sendBytesAsync(bm, j, tag, encs[j]))
		}
	}

	lo, hi := chunkBounds(n, k, rank)
	acc := make([]float32, hi-lo)
	scratch := make([]float32, hi-lo)
	for r := 0; r < k; r++ {
		frame := encs[rank]
		if r != rank {
			var err error
			frame, err = bm.RecvBytes(r, tag)
			if err != nil {
				return nil, 0, err
			}
		}
		dst := acc
		if r > 0 {
			dst = scratch
		}
		if err := codec.Decode(frame, dst); err != nil {
			return nil, 0, fmt.Errorf("comm: decoding chunk contribution from rank %d: %w", r, err)
		}
		if r > 0 {
			reduceInto(acc, scratch, Sum)
		}
	}
	for _, errc := range errcs {
		if err := <-errc; err != nil {
			return nil, 0, err
		}
	}
	return acc, wire, nil
}

// sendBytesAsync issues SendBytes on its own goroutine so matching
// receives can proceed concurrently (the byte-lane twin of sendAsync).
func sendBytesAsync(bm transport.ByteMesh, to int, tag uint64, data []byte) <-chan error {
	errc := make(chan error, 1)
	go func() { errc <- bm.SendBytes(to, tag, data) }()
	return errc
}

var _ GradientCompressor = (*meshGroup)(nil)
var _ GradientCompressor = (*RoundRobin)(nil)
