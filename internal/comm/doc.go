// Package comm implements the collective communication layer DDP is
// built on — the equivalent of PyTorch's c10d library (Section 3.3 of
// the paper). It exposes a ProcessGroup API wrapping interchangeable
// transports and AllReduce algorithms, async Work handles, and a
// composite round-robin ProcessGroup.
//
// Like NCCL's dedicated CUDA streams, every ProcessGroup owns a worker
// goroutine that executes its collectives strictly in submission order;
// callers get back a Work handle immediately and may overlap further
// computation with the communication (the paper's central optimization).
// All ranks must submit the same operations in the same order — the
// transports' tag checks turn violations into errors instead of silent
// gradient corruption.
//
// # AllReduce algorithms
//
// Six algorithms are provided, mirroring the selection space inside
// NCCL/Gloo that the paper discusses (Section 2.3):
//
//   - Ring: reduce-scatter + all-gather around a ring. Bandwidth
//     optimal (2(k-1)/k of the buffer per link), 2(k-1) latency terms.
//   - Tree: binomial reduce to rank 0 + broadcast back; log(k)
//     latency, the right shape for small messages.
//   - DoubleTree: NCCL 2.4's double binary trees — two complementary
//     in-order binary trees, each reducing and broadcasting half the
//     payload concurrently, with every rank an inner node in at most
//     one tree. Log-depth like Tree but at full bandwidth (no
//     half-idle leaves), with chunk pipelining so large buffers
//     stream through the trees (hw.DoubleTreeAllReduceSeconds models
//     the latency win over Ring; doubletree.go has the construction).
//   - Naive: full exchange with every peer — the strawman baseline.
//   - Hierarchical: the topology-aware AllReduce. With the classic
//     two-level Topology it reduces onto per-host leaders, runs the
//     inter-host ring among leaders only, and broadcasts back. A flat
//     ring spanning machines makes every server's NIC carry the
//     crossing edges of all concurrent rings, collapsing per-ring
//     bandwidth to NIC/GPUsPerServer (the paper's Section 6.1
//     observation, modeled in hw.AllReduceSeconds); reducing within
//     the host first sends only one rank's worth of data per host
//     across the network, recovering most of that loss
//     (hw.HierarchicalAllReduceSeconds models the recovery; the bench
//     package's hierarchical ablation quantifies it). An N-level
//     Topology (nested "/" labels: pod/rack/host) generalizes this to
//     reduce-up/broadcast-down per level with the ring at the top
//     among top-level leaders only (hw.NLevelAllReduceSeconds prices
//     the latency/bandwidth tradeoff). When the group carries a
//     WireCodec (see below), the top leader ring — the only phase
//     crossing the expensive boundary — runs compressed over the byte
//     lanes while intra-level phases stay exact.
//   - Auto: picks per collective from the message size, world size,
//     and the group's Topology, like NCCL's size-driven algorithm
//     switch: small messages take the log-depth trees (DoubleTree
//     from world 4 up, Tree below), large messages on a multi-host
//     topology take Hierarchical, medium messages on deep worlds
//     (>= 32 ranks) take DoubleTree, everything else Ring. Selection
//     is a pure function of (size, world, topology), all identical on
//     every rank, so all ranks agree.
//
// Every algorithm leaves bitwise-identical results on every rank —
// each reduced value is computed on exactly one rank and propagated
// verbatim — which is the invariant that lets DDP guarantee identical
// replicas. Algorithms may differ from EACH OTHER in low bits (float
// reduction order differs), so all ranks must also agree on the
// algorithm, which Options and Auto's deterministic rule ensure.
//
// # Gradient compression
//
// The Codec interface models Section 6.2.3's compression direction;
// codecs that also implement WireCodec (Float16Codec, OneBitCodec,
// TopKCodec) produce the real byte representation, and
// CompressedAllReduce ships it over the transports' byte lanes
// (transport.ByteMesh): a reduce-scatter + all-gather in which every
// frame is compressed, so the codec's ratio lands on the wire rather
// than only in the simulator's cost model. Groups expose the
// capability through GradientCompressor; the package-level
// CompressedAllReduce probes for it and falls back to
// quantize-then-AllReduce (one quantization, exact float32 reduction —
// a different numerical trajectory than the wire path's two-stage
// quantization, though both converge under error feedback) when the
// group or transport cannot carry bytes, or for Min/Max/Prod where the
// compressed form cannot be reduced exactly.
//
// Error feedback is caller-owned: Encode takes a residual vector that
// accumulates each element's quantization error across iterations
// (1-bit SGD's convergence trick). DDP keys these residuals by
// parameter identity so bucket rebuilds re-map them, and elastic
// recovery broadcasts them with the rest of the training state.
// Non-finite gradient elements are dropped and counted
// (DroppedNonFinite) instead of poisoning scales and residuals with
// NaN.
//
// # Topology
//
// Topology maps ranks to placement labels. A plain label ("host3") is
// one level; "/"-separated labels ("pod0/rack1/host3") build an
// N-level hierarchy — Levels(), NumGroups, and the per-level phase
// schedule all derive from the label structure, so deeper physical
// topologies need no new API. Groups obtain a Topology from (in
// precedence order) Options.Topology, or the transport itself when it
// knows peer placement (TCP meshes implement transport.HostLister from
// rendezvous addresses). The elastic package's builders pass each
// rendezvous round's member hosts through Options.Topology — nested
// labels flow through rendezvous unchanged — so regenerated groups
// stay topology-aware across membership changes. The hierarchical
// phases run on sub-meshes carved out of the group's single
// transport.Mesh by rank remapping (transport.NewSubMesh) — no extra
// connections, no extra rendezvous.
package comm
