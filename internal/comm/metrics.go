package comm

import (
	"time"

	"repro/internal/metrics"
)

// Prometheus instruments for the collective hot path. Only successful
// collectives are observed: an aborted AllReduce (the elastic teardown
// path) measures time-to-abort, not collective latency, and would skew
// the distributions the paper's Figs 7–8 correspond to. Failures
// surface through errors and the elastic recovery counters instead.
var (
	mAllReduceDur = metrics.Default().HistogramVec(
		"comm_allreduce_duration_seconds",
		"AllReduce wall time from worker dispatch to completion, by resolved algorithm (compressed collectives report as \"compressed\").",
		metrics.DurationBuckets, "algorithm")
	mAllReduceBytes = metrics.Default().HistogramVec(
		"comm_allreduce_payload_bytes",
		"AllReduce payload size in uncompressed float32 bytes, by resolved algorithm.",
		metrics.SizeBuckets, "algorithm")
	mCompressedWireBytes = metrics.Default().HistogramVec(
		"comm_compressed_wire_bytes",
		"Encoded bytes this rank put on the byte lanes per compressed AllReduce, by codec (0-byte fallbacks to the float path are not observed).",
		metrics.SizeBuckets, "codec")
	mDroppedNonFinite = metrics.Default().Counter(
		"comm_dropped_nonfinite_total",
		"Non-finite gradient elements dropped by compression codecs; mirrors DroppedNonFinite().")
)

// observeAllReduce records one completed collective under the resolved
// algorithm label.
func observeAllReduce(algo string, elems int, start time.Time, err error) {
	if err != nil {
		return
	}
	mAllReduceDur.With(algo).Observe(time.Since(start).Seconds())
	mAllReduceBytes.With(algo).Observe(float64(4 * elems))
}
