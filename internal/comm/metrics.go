package comm

import (
	"time"

	"repro/internal/metrics"
)

// Prometheus instruments for the collective hot path. Only successful
// collectives are observed: an aborted AllReduce (the elastic teardown
// path) measures time-to-abort, not collective latency, and would skew
// the distributions the paper's Figs 7–8 correspond to. Failures
// surface through errors and the elastic recovery counters instead.
var (
	mAllReduceDur = metrics.Default().HistogramVec(
		"comm_allreduce_duration_seconds",
		"AllReduce wall time from worker dispatch to completion, by resolved algorithm (compressed collectives report as \"compressed\").",
		metrics.DurationBuckets, "algorithm")
	mAllReduceBytes = metrics.Default().HistogramVec(
		"comm_allreduce_payload_bytes",
		"AllReduce payload size in uncompressed float32 bytes, by resolved algorithm.",
		metrics.SizeBuckets, "algorithm")
	mCompressedWireBytes = metrics.Default().HistogramVec(
		"comm_compressed_wire_bytes",
		"Encoded bytes this rank put on the byte lanes per compressed AllReduce, by codec (0-byte fallbacks to the float path are not observed).",
		metrics.SizeBuckets, "codec")
	mDroppedNonFinite = metrics.Default().Counter(
		"comm_dropped_nonfinite_total",
		"Non-finite gradient elements dropped by compression codecs; mirrors DroppedNonFinite().")
	mCollectiveDur = metrics.Default().HistogramVec(
		"comm_collective_duration_seconds",
		"Wall time of the extended and sharded collectives (reduce_scatter, all_gather, all_to_all, gather, scatter, reduce_scatter_v, all_gather_v, compressed_reduce_scatter_v) from worker dispatch to completion; AllReduce has its own per-algorithm family.",
		metrics.DurationBuckets, "collective")
	mCollectiveBytes = metrics.Default().HistogramVec(
		"comm_collective_payload_bytes",
		"Payload size of the extended and sharded collectives in float32 bytes: the full vector the collective operates over (src for reduce_scatter/all_to_all, world*src for all_gather, the in-place buffer for the *_v sharded forms).",
		metrics.SizeBuckets, "collective")
)

// observeAllReduce records one completed collective under the resolved
// algorithm label.
func observeAllReduce(algo string, elems int, start time.Time, err error) {
	if err != nil {
		return
	}
	mAllReduceDur.With(algo).Observe(time.Since(start).Seconds())
	mAllReduceBytes.With(algo).Observe(float64(4 * elems))
}

// observeCollective records one completed extended/sharded collective
// under its kind label. Like observeAllReduce, failures are not
// observed: an aborted collective measures time-to-abort, not latency.
func observeCollective(kind string, elems int, start time.Time, err error) {
	if err != nil {
		return
	}
	mCollectiveDur.With(kind).Observe(time.Since(start).Seconds())
	mCollectiveBytes.With(kind).Observe(float64(4 * elems))
}
