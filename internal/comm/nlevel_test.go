package comm

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/transport"
)

// TestTopologyNLevels pins the structured-label parser and the derived
// per-level machinery the N-level schedule walks.
func TestTopologyNLevels(t *testing.T) {
	// Two pods, two racks each, two ranks per host on pod p0 and one on
	// p1 — uneven on purpose.
	labels := []string{
		"p0/r0/h0", "p0/r0/h0", // ranks 0,1
		"p0/r1/h1", "p0/r1/h1", // ranks 2,3
		"p1/r2/h2", // rank 4
		"p1/r3/h3", // rank 5
	}
	topo := NewTopology(labels)
	if topo.Levels() != 3 {
		t.Fatalf("Levels() = %d, want 3", topo.Levels())
	}
	if topo.Size() != 6 || topo.NumHosts() != 4 {
		t.Fatalf("size=%d hosts=%d", topo.Size(), topo.NumHosts())
	}
	for l, want := range []int{2, 4, 4} {
		if got := topo.NumGroups(l); got != want {
			t.Fatalf("NumGroups(%d) = %d, want %d", l, got, want)
		}
	}
	if !topo.Hierarchical() {
		t.Fatal("three-level layout misclassified")
	}
	if got := topo.levelLeaders(0); !reflect.DeepEqual(got, []int{0, 4}) {
		t.Fatalf("pod leaders = %v", got)
	}
	if got := topo.Leaders(); !reflect.DeepEqual(got, []int{0, 2, 4, 5}) {
		t.Fatalf("host leaders = %v", got)
	}
	// Phase participants: host level = members, rack level = host
	// leaders within the rack, pod level = rack leaders within the pod.
	if got := topo.phaseParticipants(2, 1); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("host phase of rank 1 = %v", got)
	}
	if got := topo.phaseParticipants(1, 0); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("rack phase of rank 0 = %v", got)
	}
	if got := topo.phaseParticipants(0, 0); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("pod phase of rank 0 = %v", got)
	}
	if got := topo.phaseParticipants(0, 4); !reflect.DeepEqual(got, []int{4, 5}) {
		t.Fatalf("pod phase of rank 4 = %v", got)
	}
	if s := topo.String(); s != "6 ranks / 3 levels (2/4/4 groups)" {
		t.Fatalf("String() = %q", s)
	}

	// Non-uniform component counts degrade to opaque single-level
	// labels instead of guessing a hierarchy.
	mixed := NewTopology([]string{"p0/h0", "h1", "p0/h0"})
	if mixed.Levels() != 1 {
		t.Fatalf("mixed labels: Levels() = %d, want 1", mixed.Levels())
	}
	if mixed.NumHosts() != 2 || !reflect.DeepEqual(mixed.HostRanks(0), []int{0, 2}) {
		t.Fatalf("mixed labels grouped wrong: hosts=%d", mixed.NumHosts())
	}

	// Unstructured labels keep the PR 4 behavior bit for bit.
	two := NewTopology([]string{"a", "a", "b"})
	if two.Levels() != 1 || two.String() != "3 ranks / 2 hosts (2+1)" {
		t.Fatalf("unstructured labels: levels=%d String=%q", two.Levels(), two.String())
	}
}

// levelCountingMesh tallies payload bytes crossing level-0 (pod)
// boundaries — the most expensive links of a structured topology.
type levelCountingMesh struct {
	transport.Mesh
	topo  *Topology
	cross *atomic.Int64
}

func (c *levelCountingMesh) Send(to int, tag uint64, data []float32) error {
	if c.topo.levelIdx[0][c.Rank()] != c.topo.levelIdx[0][to] {
		c.cross.Add(int64(4 * len(data)))
	}
	return c.Mesh.Send(to, tag, data)
}

// TestNLevelHierarchicalShedsCrossPodBytes: with a three-level
// topology, only the pod leaders' top ring crosses pod boundaries, so
// the N-level schedule must move strictly (and substantially) fewer
// bytes over pod links than the flat ring AND than the two-level
// schedule run on the same placement (whose host-leader ring still
// crosses pods for every host).
func TestNLevelHierarchicalShedsCrossPodBytes(t *testing.T) {
	const world, n = 8, 4096
	three := make([]string, world)
	flatLabels := make([]string, world)
	for r := 0; r < world; r++ {
		three[r] = []string{"p0/r0/h0", "p0/r0/h0", "p0/r1/h1", "p0/r1/h1", "p1/r2/h2", "p1/r2/h2", "p1/r3/h3", "p1/r3/h3"}[r]
	}
	for r := 0; r < world; r++ {
		// Same host grouping, no rack/pod structure: the two-level
		// schedule rings ALL four host leaders.
		flatLabels[r] = three[r][len(three[r])-2:]
	}
	podTopo := NewTopology(three)
	measure := func(algo Algorithm, topo *Topology) int64 {
		var cross atomic.Int64
		meshes := transport.NewInProcMeshes(world)
		groups := make([]ProcessGroup, world)
		for r := range groups {
			groups[r] = NewGroup(&levelCountingMesh{Mesh: meshes[r], topo: podTopo, cross: &cross}, Options{Algorithm: algo, Topology: topo})
		}
		runCollective(t, groups, func(rank int, g ProcessGroup) error {
			buf := make([]float32, n)
			return g.AllReduce(buf, Sum).Wait()
		})
		closeAll(groups)
		return cross.Load()
	}
	ring := measure(Ring, nil)
	twoLevel := measure(Hierarchical, NewTopology(flatLabels))
	nLevel := measure(Hierarchical, podTopo)
	if nLevel >= twoLevel || twoLevel >= ring {
		t.Fatalf("cross-pod bytes: ring=%d two-level=%d n-level=%d (want strictly decreasing)", ring, twoLevel, nLevel)
	}
	// Structurally: the three-level top ring is 2 pod leaders swapping
	// ~one buffer each, the two-level leader ring is 4 leaders of which
	// every hop between rack 1 and rack 2 crosses pods.
	if ratio := float64(twoLevel) / float64(nLevel); ratio < 1.5 {
		t.Fatalf("n-level saved only %.2fx vs two-level", ratio)
	}
}
