package comm

import (
	"reflect"
	"testing"
)

// legacyReduceSchedule replays the pre-refactor binomialReduce loop
// (ascending mask scan) and returns the ranks it would receive from,
// in order, followed by the send target (-1 if root).
func legacyReduceSchedule(rank, k int) (recvs []int, send int) {
	send = -1
	for mask := 1; mask < k; mask <<= 1 {
		if rank&mask != 0 {
			send = rank - mask
			return recvs, send
		}
		if peer := rank + mask; peer < k {
			recvs = append(recvs, peer)
		}
	}
	return recvs, send
}

// legacyBroadcastSchedule replays the pre-refactor binomialBroadcast
// loop (rotated vrank space, descending mask fan-out) and returns the
// source rank (-1 for the root) and the ordered send targets.
func legacyBroadcastSchedule(rank, k, root int) (src int, sends []int) {
	src = -1
	vrank := (rank - root + k) % k
	top := 1
	for top < k {
		top <<= 1
	}
	if vrank != 0 {
		mask := 1
		for vrank&mask == 0 {
			mask <<= 1
		}
		src = (vrank - mask + root + k) % k
	}
	lowest := top
	if vrank != 0 {
		lowest = 1
		for vrank&lowest == 0 {
			lowest <<= 1
		}
	}
	for mask := lowest >> 1; mask >= 1; mask >>= 1 {
		if dst := vrank + mask; dst < k {
			sends = append(sends, (dst+root)%k)
		}
	}
	return src, sends
}

// TestBinomialRelationMatchesLegacySchedules pins the refactor: the
// shared binomialRelation helper must produce, for every rank, world
// size, and root, exactly the message schedule the two hand-rolled
// loops it replaced produced — same peers, same order. Any deviation
// would change reduction order (breaking bitwise reproducibility) or
// frame order on a link (breaking the strict-FIFO transports).
func TestBinomialRelationMatchesLegacySchedules(t *testing.T) {
	for k := 1; k <= 70; k++ {
		for rank := 0; rank < k; rank++ {
			parent, children := binomialRelation(rank, k)
			wantRecvs, wantSend := legacyReduceSchedule(rank, k)
			if parent != wantSend {
				t.Fatalf("k=%d rank=%d: parent %d, legacy reduce sent to %d", k, rank, parent, wantSend)
			}
			if !reflect.DeepEqual(children, wantRecvs) {
				t.Fatalf("k=%d rank=%d: children %v, legacy reduce received from %v", k, rank, children, wantRecvs)
			}
			for _, root := range []int{0, 1, k / 2, k - 1} {
				vrank := (rank - root + k) % k
				vparent, vchildren := binomialRelation(vrank, k)
				src := -1
				if vparent >= 0 {
					src = (vparent + root) % k
				}
				var sends []int
				for i := len(vchildren) - 1; i >= 0; i-- {
					sends = append(sends, (vchildren[i]+root)%k)
				}
				wantSrc, wantSends := legacyBroadcastSchedule(rank, k, root)
				if src != wantSrc {
					t.Fatalf("k=%d rank=%d root=%d: src %d, legacy %d", k, rank, root, src, wantSrc)
				}
				if !reflect.DeepEqual(sends, wantSends) {
					t.Fatalf("k=%d rank=%d root=%d: sends %v, legacy %v", k, rank, root, sends, wantSends)
				}
			}
		}
	}
}
