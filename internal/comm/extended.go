package comm

import (
	"fmt"
	"time"

	"repro/internal/transport"
)

// The extended collectives round out the c10d API surface:
// ReduceScatter and Gather/Scatter are what sharded-optimizer schemes
// like ZeRO (discussed in the paper's Section 7) build on, and
// ReduceScatter is also the first phase of the ring AllReduce.

// ReduceScatter reduces equal chunks of src across ranks and leaves this
// rank's reduced chunk in dst: src holds Size() chunks of len(dst), and
// rank r receives the reduction of every rank's r-th chunk.
//
// The schedule is topology-aware like AllReduce's: a group configured
// (or Auto-resolved, at the same size cutoff) to Hierarchical with a
// multi-level Topology routes through the hierarchical submesh path —
// reduce up to the per-level leaders, leader ring, broadcast down,
// then every rank keeps its own chunk — so cross-host traffic is
// bounded by the leader ring regardless of how ranks are laid out
// across hosts, where the flat ring's cross-host volume degrades with
// adversarial placements. Every other configuration takes the flat
// ring reduce-scatter. Both schedules leave all ranks' chunks drawn
// from bitwise-identical reductions; the two differ in fold order,
// like switching AllReduce algorithms does.
func (g *meshGroup) ReduceScatter(dst, src []float32, op ReduceOp) Work {
	world := g.Size()
	if len(src) != world*len(dst) {
		return CompletedWork(fmt.Errorf("comm: reduce-scatter src %d != world %d * dst %d", len(src), world, len(dst)))
	}
	algo := g.opts.Algorithm
	if algo == Auto {
		algo = chooseAlgorithm(g.topo, len(src), world)
	}
	hier := algo == Hierarchical && g.topo != nil && g.topo.Size() == world && g.topo.Hierarchical()
	return g.submit(func(tag uint64) error {
		start := time.Now()
		var err error
		if hier {
			err = hierarchicalReduceScatter(g.mesh, tag, dst, src, op, g.topo)
		} else {
			err = reduceScatter(g.mesh, tag, dst, src, op)
		}
		observeCollective("reduce_scatter", len(src), start, err)
		return err
	})
}

// hierarchicalReduceScatter is the topology-aware equal-chunk
// reduce-scatter: it reduces a working copy of src through the same
// submesh phases as hierarchicalAllReduce (reduce up, leader ring,
// broadcast down), then each rank keeps chunk rank, applying the Avg
// scale to just that chunk. Reusing the AllReduce schedule keeps the
// cross-host volume properties (and the bitwise-identical-on-every-
// rank guarantee) of the leader-ring path at the cost of broadcasting
// the full reduced vector back down intra-host — cheap where it
// happens, and the contract (every rank could reconstruct any chunk)
// stays simple.
func hierarchicalReduceScatter(m transport.Mesh, tag uint64, dst, src []float32, op ReduceOp, topo *Topology) error {
	k := m.Size()
	if k == 1 {
		copy(dst, src)
		return nil
	}
	buf := append([]float32(nil), src...)
	foldOp := op
	if op == Avg {
		foldOp = Sum
	}
	if _, err := hierarchicalAllReduce(m, tag, buf, foldOp, topo, nil, nil); err != nil {
		return err
	}
	rank := m.Rank()
	n := len(dst)
	copy(dst, buf[rank*n:(rank+1)*n])
	if op == Avg {
		scale := 1 / float32(k)
		for i := range dst {
			dst[i] *= scale
		}
	}
	return nil
}

// Gather collects src from every rank into dst on root (dst is ignored
// on other ranks; on root it must have Size() slices of len(src)).
func (g *meshGroup) Gather(dst [][]float32, src []float32, root int) Work {
	if root < 0 || root >= g.Size() {
		return CompletedWork(fmt.Errorf("comm: gather root %d out of range", root))
	}
	return g.submit(func(tag uint64) error {
		start := time.Now()
		err := gather(g.mesh, tag, dst, src, root)
		observeCollective("gather", len(src), start, err)
		return err
	})
}

// Scatter distributes root's src slices to every rank's dst (src is
// ignored on non-roots; on root it must have Size() slices of len(dst)).
func (g *meshGroup) Scatter(dst []float32, src [][]float32, root int) Work {
	if root < 0 || root >= g.Size() {
		return CompletedWork(fmt.Errorf("comm: scatter root %d out of range", root))
	}
	return g.submit(func(tag uint64) error {
		start := time.Now()
		err := scatter(g.mesh, tag, dst, src, root)
		observeCollective("scatter", len(dst), start, err)
		return err
	})
}

// AllToAll exchanges chunk j of every rank's src with rank j: dst ends
// up holding [rank 0's chunk-for-me, rank 1's chunk-for-me, ...]. Both
// src and dst hold Size() equal chunks. This is the primitive layer-
// sharding schemes (Mesh-TensorFlow style, paper Section 7) build on.
func (g *meshGroup) AllToAll(dst, src []float32) Work {
	world := g.Size()
	if len(src) != len(dst) || len(src)%world != 0 {
		return CompletedWork(fmt.Errorf("comm: all-to-all needs equal chunked buffers, got src %d dst %d world %d", len(src), len(dst), world))
	}
	return g.submit(func(tag uint64) error {
		start := time.Now()
		err := allToAll(g.mesh, tag, dst, src)
		observeCollective("all_to_all", len(src), start, err)
		return err
	})
}

// ExtendedGroup is the optional interface for the collectives beyond
// the core ProcessGroup API. The mesh-backed groups implement it;
// composite groups may not.
type ExtendedGroup interface {
	ProcessGroup
	ReduceScatter(dst, src []float32, op ReduceOp) Work
	Gather(dst [][]float32, src []float32, root int) Work
	Scatter(dst []float32, src [][]float32, root int) Work
	AllToAll(dst, src []float32) Work
}

var _ ExtendedGroup = (*meshGroup)(nil)

// reduceScatter runs the ring reduce-scatter over explicit chunks: after
// k-1 steps, rank r holds the full reduction of chunk r.
func reduceScatter(m transport.Mesh, tag uint64, dst, src []float32, op ReduceOp) error {
	k := m.Size()
	rank := m.Rank()
	n := len(dst)
	if k == 1 {
		copy(dst, src)
		return nil
	}
	right := (rank + 1) % k
	left := (rank - 1 + k) % k
	// Work on a copy so src is not clobbered.
	buf := append([]float32(nil), src...)
	for step := 0; step < k-1; step++ {
		sendIdx := (rank - step + k) % k
		recvIdx := (rank - step - 1 + k) % k
		errc := sendAsync(m, right, tag, buf[sendIdx*n:(sendIdx+1)*n])
		in, err := m.Recv(left, tag)
		if err != nil {
			<-errc
			return err
		}
		if err := <-errc; err != nil {
			return err
		}
		if len(in) != n {
			return fmt.Errorf("comm: reduce-scatter chunk size %d, want %d", len(in), n)
		}
		reduceInto(buf[recvIdx*n:(recvIdx+1)*n], in, op)
	}
	// After k-1 steps the fully reduced chunk at this rank is chunk
	// (rank+1)%k; the API contract gives rank its own index, so rotate
	// once more: receive chunk `rank` from the left neighbour, which
	// finished it.
	finished := (rank + 1) % k
	errc := sendAsync(m, right, tag, buf[finished*n:(finished+1)*n])
	in, err := m.Recv(left, tag)
	if err != nil {
		<-errc
		return err
	}
	if err := <-errc; err != nil {
		return err
	}
	copy(dst, in)
	if op == Avg {
		scale := 1 / float32(k)
		for i := range dst {
			dst[i] *= scale
		}
	}
	return nil
}

// allToAll performs the pairwise chunk exchange.
func allToAll(m transport.Mesh, tag uint64, dst, src []float32) error {
	k := m.Size()
	rank := m.Rank()
	n := len(src) / k
	copy(dst[rank*n:(rank+1)*n], src[rank*n:(rank+1)*n])
	if k == 1 {
		return nil
	}
	errcs := make([]<-chan error, 0, k-1)
	for peer := 0; peer < k; peer++ {
		if peer != rank {
			errcs = append(errcs, sendAsync(m, peer, tag, src[peer*n:(peer+1)*n]))
		}
	}
	for peer := 0; peer < k; peer++ {
		if peer == rank {
			continue
		}
		buf, err := m.Recv(peer, tag)
		if err != nil {
			return err
		}
		if len(buf) != n {
			return fmt.Errorf("comm: all-to-all chunk from rank %d has %d elements, want %d", peer, len(buf), n)
		}
		copy(dst[peer*n:(peer+1)*n], buf)
	}
	for _, errc := range errcs {
		if err := <-errc; err != nil {
			return err
		}
	}
	return nil
}

// gather collects src into dst on root via direct sends.
func gather(m transport.Mesh, tag uint64, dst [][]float32, src []float32, root int) error {
	k := m.Size()
	rank := m.Rank()
	if rank != root {
		return m.Send(root, tag, src)
	}
	if len(dst) != k {
		return fmt.Errorf("comm: gather dst has %d slots for world %d", len(dst), k)
	}
	copy(dst[rank], src)
	for peer := 0; peer < k; peer++ {
		if peer == rank {
			continue
		}
		buf, err := m.Recv(peer, tag)
		if err != nil {
			return err
		}
		if len(buf) != len(dst[peer]) {
			return fmt.Errorf("comm: gather size mismatch from rank %d", peer)
		}
		copy(dst[peer], buf)
	}
	return nil
}

// scatter distributes src chunks from root via direct sends.
func scatter(m transport.Mesh, tag uint64, dst []float32, src [][]float32, root int) error {
	k := m.Size()
	rank := m.Rank()
	if rank == root {
		if len(src) != k {
			return fmt.Errorf("comm: scatter src has %d slots for world %d", len(src), k)
		}
		copy(dst, src[rank])
		errcs := make([]<-chan error, 0, k-1)
		for peer := 0; peer < k; peer++ {
			if peer != rank {
				errcs = append(errcs, sendAsync(m, peer, tag, src[peer]))
			}
		}
		for _, errc := range errcs {
			if err := <-errc; err != nil {
				return err
			}
		}
		return nil
	}
	buf, err := m.Recv(root, tag)
	if err != nil {
		return err
	}
	if len(buf) != len(dst) {
		return fmt.Errorf("comm: scatter size mismatch: got %d want %d", len(buf), len(dst))
	}
	copy(dst, buf)
	return nil
}
