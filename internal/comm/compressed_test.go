package comm

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/transport"
)

// tcpTestMeshes builds a TCP mesh set for the compressed-collective
// tests, with per-test unique prefixes so suites can share a store.
var compressedTCPSeq atomic.Int64

func tcpTestMeshes(t *testing.T, world int) []transport.Mesh {
	t.Helper()
	st := store.NewInMem(20 * time.Second)
	t.Cleanup(func() { st.Close() })
	prefix := fmt.Sprintf("compressed-%d", compressedTCPSeq.Add(1))
	meshes := make([]transport.Mesh, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			meshes[r], errs[r] = transport.NewTCPMesh(r, world, st, prefix)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("tcp mesh rank %d: %v", r, err)
		}
	}
	return meshes
}

func groupsOver(meshes []transport.Mesh, opts Options) []ProcessGroup {
	groups := make([]ProcessGroup, len(meshes))
	for r := range meshes {
		groups[r] = NewGroup(meshes[r], opts)
	}
	return groups
}

// TestCompressedAllReduceAllRanksAgree: the core invariant — every rank
// finishes with bitwise-identical data — across codecs, transports,
// world sizes (including non-power-of-two), and payload shapes
// (including empty, single-element, and n < world where some chunks are
// empty).
func TestCompressedAllReduceAllRanksAgree(t *testing.T) {
	sizes := []int{0, 1, 2, 5, 1000}
	for _, tr := range []string{"inproc", "tcp"} {
		for _, world := range []int{1, 2, 3, 4} {
			if tr == "tcp" && world > 3 {
				continue // keep socket churn bounded; 2 and 3 cover the shapes
			}
			var meshes []transport.Mesh
			if tr == "inproc" {
				meshes = transport.NewInProcMeshes(world)
			} else {
				meshes = tcpTestMeshes(t, world)
			}
			groups := groupsOver(meshes, Options{})
			for _, codec := range wireCodecs() {
				for _, n := range sizes {
					results := make([][]float32, world)
					residuals := make([][]float32, world)
					runCollective(t, groups, func(rank int, g ProcessGroup) error {
						data := make([]float32, n)
						for i := range data {
							data[i] = float32(rank+1) * (float32(i%17) - 8)
						}
						res := make([]float32, n)
						if err := CompressedAllReduce(g, data, Avg, codec, res).Wait(); err != nil {
							return err
						}
						results[rank] = data
						residuals[rank] = res
						return nil
					})
					for r := 1; r < world; r++ {
						for i := range results[0] {
							if results[r][i] != results[0][i] {
								t.Fatalf("%s/%s world %d n %d: rank %d diverges at elem %d: %v vs %v",
									tr, codec.Name(), world, n, r, i, results[r][i], results[0][i])
							}
						}
					}
					for r := range results {
						for i, v := range results[r] {
							if math.IsNaN(float64(v)) {
								t.Fatalf("%s/%s world %d n %d: rank %d elem %d is NaN", tr, codec.Name(), world, n, r, i)
							}
						}
						for i, v := range residuals[r] {
							if math.IsNaN(float64(v)) {
								t.Fatalf("%s/%s world %d n %d: rank %d residual %d is NaN", tr, codec.Name(), world, n, r, i)
							}
						}
					}
				}
			}
			closeAll(groups)
		}
	}
}

// TestCompressedAllReduceFp16Accuracy: fp16 is near-lossless for small
// integers, so the compressed mean must match the exact mean closely.
func TestCompressedAllReduceFp16Accuracy(t *testing.T) {
	const world, n = 4, 257
	groups := NewInProcGroups(world, Options{})
	defer closeAll(groups)
	results := make([][]float32, world)
	runCollective(t, groups, func(rank int, g ProcessGroup) error {
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(rank + 1) // sum 10, avg 2.5: exact in fp16
		}
		if err := CompressedAllReduce(g, data, Avg, Float16Codec{}, nil).Wait(); err != nil {
			return err
		}
		results[rank] = data
		return nil
	})
	for r := range results {
		for i, v := range results[r] {
			if v != 2.5 {
				t.Fatalf("rank %d elem %d: %v, want 2.5", r, i, v)
			}
		}
	}
}

// TestCompressedAllReduceFallbackOps: Min/Max/Prod take the
// quantize-then-Ring path and must equal a plain Ring reduction over
// quantized inputs.
func TestCompressedAllReduceFallbackOps(t *testing.T) {
	const world, n = 3, 64
	for _, op := range []ReduceOp{Min, Max, Prod} {
		groups := NewInProcGroups(world, Options{})
		results := make([][]float32, world)
		runCollective(t, groups, func(rank int, g ProcessGroup) error {
			data := make([]float32, n)
			for i := range data {
				data[i] = float32(rank+1) + float32(i)/64
			}
			if err := CompressedAllReduce(g, data, op, Float16Codec{}, nil).Wait(); err != nil {
				return err
			}
			results[rank] = data
			return nil
		})
		closeAll(groups)
		// Reference: quantize locally, then exact reduce.
		want := make([][]float32, world)
		for rank := 0; rank < world; rank++ {
			want[rank] = make([]float32, n)
			for i := range want[rank] {
				want[rank][i] = Float16Round(float32(rank+1) + float32(i)/64)
			}
		}
		ref := append([]float32(nil), want[0]...)
		for rank := 1; rank < world; rank++ {
			reduceInto(ref, want[rank], op)
		}
		for r := range results {
			for i := range ref {
				if results[r][i] != ref[i] {
					t.Fatalf("op %v rank %d elem %d: %v want %v", op, r, i, results[r][i], ref[i])
				}
			}
		}
	}
}

// TestCompressedAllReduceNoByteLanes: a group over a float-only mesh
// must fall back transparently and still agree on every rank.
func TestCompressedAllReduceNoByteLanes(t *testing.T) {
	const world, n = 3, 100
	meshes := transport.NewInProcMeshes(world)
	wrapped := make([]transport.Mesh, world)
	for r := range meshes {
		wrapped[r] = floatOnly{meshes[r]}
	}
	groups := groupsOver(wrapped, Options{})
	defer closeAll(groups)
	results := make([][]float32, world)
	runCollective(t, groups, func(rank int, g ProcessGroup) error {
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(rank) - float32(i%5)
		}
		if err := CompressedAllReduce(g, data, Avg, &OneBitCodec{}, make([]float32, n)).Wait(); err != nil {
			return err
		}
		results[rank] = data
		return nil
	})
	for r := 1; r < world; r++ {
		for i := range results[0] {
			if results[r][i] != results[0][i] {
				t.Fatalf("rank %d diverges at %d", r, i)
			}
		}
	}
}

// floatOnly hides a mesh's byte lanes.
type floatOnly struct{ m transport.Mesh }

func (f floatOnly) Rank() int                                    { return f.m.Rank() }
func (f floatOnly) Size() int                                    { return f.m.Size() }
func (f floatOnly) Send(to int, tag uint64, d []float32) error   { return f.m.Send(to, tag, d) }
func (f floatOnly) Recv(from int, tag uint64) ([]float32, error) { return f.m.Recv(from, tag) }
func (f floatOnly) Close() error                                 { return f.m.Close() }

// wireCounter wraps a mesh and counts every payload+header byte leaving
// this rank, on both lanes — the "real cross-wire bytes" the compressed
// path exists to shrink.
type wireCounter struct {
	transport.Mesh
	bytes *atomic.Int64
}

func (c *wireCounter) Send(to int, tag uint64, data []float32) error {
	c.bytes.Add(int64(12 + 4*len(data)))
	return c.Mesh.Send(to, tag, data)
}

// SendBytes counts and forwards a byte-lane frame.
func (c *wireCounter) SendBytes(to int, tag uint64, data []byte) error {
	bm, ok := transport.ByteLanes(c.Mesh)
	if !ok {
		return fmt.Errorf("wireCounter: base mesh has no byte lanes")
	}
	c.bytes.Add(int64(12 + len(data)))
	return bm.SendBytes(to, tag, data)
}

// RecvBytes forwards a byte-lane receive.
func (c *wireCounter) RecvBytes(from int, tag uint64) ([]byte, error) {
	bm, ok := transport.ByteLanes(c.Mesh)
	if !ok {
		return nil, fmt.Errorf("wireCounter: base mesh has no byte lanes")
	}
	return bm.RecvBytes(from, tag)
}

// HasByteLanes reports the base mesh's capability.
func (c *wireCounter) HasByteLanes() bool {
	_, ok := transport.ByteLanes(c.Mesh)
	return ok
}

// measureWireBytes runs one AllReduce (plain Ring when codec is nil,
// compressed otherwise) over counted TCP meshes and returns total bytes
// put on the wire by all ranks.
func measureWireBytes(t *testing.T, world, n int, codec WireCodec) int64 {
	t.Helper()
	meshes := tcpTestMeshes(t, world)
	var total atomic.Int64
	wrapped := make([]transport.Mesh, world)
	for r := range meshes {
		wrapped[r] = &wireCounter{Mesh: meshes[r], bytes: &total}
	}
	groups := groupsOver(wrapped, Options{Algorithm: Ring})
	defer closeAll(groups)
	runCollective(t, groups, func(rank int, g ProcessGroup) error {
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(rank+1) * float32(i%7)
		}
		if codec == nil {
			return g.AllReduce(data, Sum).Wait()
		}
		return CompressedAllReduce(g, data, Sum, codec, make([]float32, n)).Wait()
	})
	return total.Load()
}

// TestCompressedWireBytesReduction is the acceptance criterion measured
// for real on a TCP mesh: vs the uncompressed Ring, fp16 frames must
// cut total cross-wire bytes by >= 1.9x and 1-bit frames by >= 8x.
// Deterministic — it counts actual socket payloads, not a model.
func TestCompressedWireBytesReduction(t *testing.T) {
	const world, n = 4, 1 << 16
	ring := measureWireBytes(t, world, n, nil)
	for _, tc := range []struct {
		codec    WireCodec
		minRatio float64
	}{
		{Float16Codec{}, 1.9},
		{&OneBitCodec{}, 8},
		{&TopKCodec{}, 3},
	} {
		got := measureWireBytes(t, world, n, tc.codec)
		ratio := float64(ring) / float64(got)
		t.Logf("%s: ring %d bytes, compressed %d bytes, ratio %.2fx", tc.codec.Name(), ring, got, ratio)
		if ratio < tc.minRatio {
			t.Fatalf("%s: wire reduction %.2fx < required %.2fx (ring %d, compressed %d)",
				tc.codec.Name(), ratio, tc.minRatio, ring, got)
		}
	}
}

// TestCompressedAllReduceRoundRobin: the composite group must dispatch
// compressed collectives and agree across ranks.
func TestCompressedAllReduceRoundRobin(t *testing.T) {
	const world, nGroups, n = 2, 2, 512
	subs := make([][]ProcessGroup, nGroups)
	for i := range subs {
		subs[i] = NewInProcGroups(world, Options{})
	}
	results := make([][]float32, world)
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			gs := make([]ProcessGroup, nGroups)
			for i := range gs {
				gs[i] = subs[i][rank]
			}
			rr, err := NewRoundRobin(gs...)
			if err != nil {
				errs[rank] = err
				return
			}
			defer rr.Close()
			data := make([]float32, n)
			for i := range data {
				data[i] = float32(rank+1) + float32(i%3)
			}
			// Two collectives so the rotation is exercised.
			for it := 0; it < 2; it++ {
				if err := CompressedAllReduce(rr, data, Avg, &OneBitCodec{}, make([]float32, n)).Wait(); err != nil {
					errs[rank] = err
					return
				}
			}
			results[rank] = data
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for i := range results[0] {
		if results[0][i] != results[1][i] {
			t.Fatalf("round-robin compressed diverged at %d", i)
		}
	}
}

// TestErrorFeedbackConvergence: gradient descent through the 1-bit
// codec converges to the optimum WITH error feedback and stalls
// without — the property the residual plumbing exists for. World 1
// (CompressedAllReduce quantizes locally), fully deterministic.
func TestErrorFeedbackConvergence(t *testing.T) {
	groups := NewInProcGroups(1, Options{})
	defer closeAll(groups)
	target := []float32{0.31, -1.27, 0.05, 2.4, -0.009, 0.6}

	run := func(withFeedback bool) float64 {
		x := make([]float32, len(target))
		var residual []float32
		if withFeedback {
			residual = make([]float32, len(target))
		}
		grad := make([]float32, len(target))
		const lr = 0.05
		for it := 0; it < 400; it++ {
			for i := range grad {
				grad[i] = x[i] - target[i]
			}
			if err := CompressedAllReduce(groups[0], grad, Avg, &OneBitCodec{}, residual).Wait(); err != nil {
				t.Fatal(err)
			}
			for i := range x {
				x[i] -= lr * grad[i]
			}
		}
		var maxErr float64
		for i := range x {
			if e := math.Abs(float64(x[i] - target[i])); e > maxErr {
				maxErr = e
			}
		}
		return maxErr
	}

	withEF := run(true)
	withoutEF := run(false)
	t.Logf("max error with feedback %.4f, without %.4f", withEF, withoutEF)
	if withEF > 0.05 {
		t.Fatalf("with error feedback, descent should converge (max error %.4f)", withEF)
	}
	if withoutEF < 4*withEF {
		t.Fatalf("without error feedback, 1-bit descent should stall well above the feedback run (%.4f vs %.4f)", withoutEF, withEF)
	}
}
