package comm

import (
	"math/rand"
	"testing"
)

// TestDoubleTreeRelsShape verifies the structural invariants the
// double-tree construction promises, for every world size up to 64:
// each tree is a single rooted binary tree over all ranks, and no rank
// is an inner node in both trees (the full-bandwidth property; for odd
// k exactly one rank is a leaf in both, since 2*floor(k/2) < k).
func TestDoubleTreeRelsShape(t *testing.T) {
	for k := 1; k <= 64; k++ {
		t1, t2 := doubleTreeRels(k)
		for name, rel := range map[string][]treeRel{"t1": t1, "t2": t2} {
			roots := 0
			for r := 0; r < k; r++ {
				if len(rel[r].children) > 2 {
					t.Fatalf("k=%d %s rank %d has %d children", k, name, r, len(rel[r].children))
				}
				if rel[r].parent == -1 {
					roots++
				} else {
					// Parent/child pointers must agree.
					found := false
					for _, c := range rel[rel[r].parent].children {
						if c == r {
							found = true
						}
					}
					if !found {
						t.Fatalf("k=%d %s rank %d not among parent %d's children", k, name, r, rel[r].parent)
					}
				}
			}
			if roots != 1 {
				t.Fatalf("k=%d %s has %d roots", k, name, roots)
			}
			// Every rank reaches the root: the tree is connected.
			for r := 0; r < k; r++ {
				seen := 0
				for v := r; rel[v].parent != -1; v = rel[v].parent {
					if seen++; seen > k {
						t.Fatalf("k=%d %s rank %d: parent chain cycles", k, name, r)
					}
				}
			}
		}
		bothInner := 0
		for r := 0; r < k; r++ {
			if t1[r].inner() && t2[r].inner() {
				bothInner++
			}
		}
		if bothInner != 0 {
			t.Fatalf("k=%d: %d ranks are inner nodes in both trees", k, bothInner)
		}
	}
}

// TestDoubleTreePipelinedChunks exercises payloads whose halves span
// several pipeline chunks (the correctness sweep's payloads fit one),
// including a half that is an exact chunk multiple and one element
// over.
func TestDoubleTreePipelinedChunks(t *testing.T) {
	world := 6
	for _, n := range []int{4 * doubleTreeChunkElems, 4*doubleTreeChunkElems + 2, 5*doubleTreeChunkElems + 7} {
		rng := rand.New(rand.NewSource(int64(n)))
		inputs := make([][]float32, world)
		for r := range inputs {
			inputs[r] = make([]float32, n)
			for i := range inputs[r] {
				inputs[r][i] = float32(rng.Intn(201) - 100)
			}
		}
		run := func(algo Algorithm) [][]float32 {
			groups := NewInProcGroups(world, Options{Algorithm: algo})
			defer closeAll(groups)
			bufs := make([][]float32, world)
			runCollective(t, groups, func(rank int, g ProcessGroup) error {
				bufs[rank] = append([]float32(nil), inputs[rank]...)
				return g.AllReduce(bufs[rank], Sum).Wait()
			})
			return bufs
		}
		ring, dt := run(Ring), run(DoubleTree)
		for r := 0; r < world; r++ {
			for i := 0; i < n; i++ {
				if ring[r][i] != dt[r][i] {
					t.Fatalf("n=%d rank=%d elem %d: ring %v vs doubletree %v", n, r, i, ring[r][i], dt[r][i])
				}
			}
		}
	}
}

// TestDoubleTreeMatchesRingBitwiseTCP is the TCP half of the
// bitwise-vs-Ring acceptance: the double tree's two concurrent
// goroutines share real socket links (per-link FIFO with strict tag
// matching), so any frame-ordering violation of the gate protocol
// surfaces as a tag-mismatch error or divergent bits here.
func TestDoubleTreeMatchesRingBitwiseTCP(t *testing.T) {
	for _, world := range []int{2, 5, 8} {
		meshes := tcpTestMeshes(t, world)
		groups := groupsOver(meshes, Options{Algorithm: DoubleTree})
		const n = 2049
		rng := rand.New(rand.NewSource(int64(world)))
		inputs := make([][]float32, world)
		want := make([]float32, n)
		for r := range inputs {
			inputs[r] = make([]float32, n)
			for i := range inputs[r] {
				inputs[r][i] = float32(rng.Intn(101) - 50)
				want[i] += inputs[r][i]
			}
		}
		bufs := make([][]float32, world)
		runCollective(t, groups, func(rank int, g ProcessGroup) error {
			bufs[rank] = append([]float32(nil), inputs[rank]...)
			// Two back-to-back collectives also pin the 2-tag
			// reservation: a rank reserving one tag would desynchronize
			// the second AllReduce.
			if err := g.AllReduce(bufs[rank], Sum).Wait(); err != nil {
				return err
			}
			return g.AllReduce(append([]float32(nil), inputs[rank]...), Sum).Wait()
		})
		closeAll(groups)
		for r := 0; r < world; r++ {
			for i := 0; i < n; i++ {
				if bufs[r][i] != want[i] {
					t.Fatalf("world=%d rank=%d elem %d: got %v want %v", world, r, i, bufs[r][i], want[i])
				}
			}
		}
	}
}
