package comm

import (
	"fmt"

	"repro/internal/transport"
)

// hierarchicalAllReduce is the topology-aware AllReduce (Section 6.1's
// cross-machine bandwidth collapse, answered with the multi-ring
// structure of Kumar et al., generalized to N levels after the IBM
// large-system design): it reduces within each host first so only one
// rank's worth of data per host ever crosses the network, and — with a
// structured topology — repeats the same contraction at every level of
// the hierarchy so each level's links carry one buffer per group below
// them.
//
// The schedule, built from sub-meshes carved out of m by rank
// remapping, walks the topology from the hosts outward and back:
//
//  1. reduce up — at each level l from the deepest (hosts) to the
//     outermost, the level's participants (every host member at the
//     deepest level, the child groups' leaders above it) fold their
//     buffers onto the level leader (the group's lowest rank) along a
//     binomial tree; only leaders continue outward;
//  2. top ring — the level-0 leaders alone run the bandwidth-optimal
//     ring AllReduce. With a codec, this — and only this — phase rides
//     the compressed byte lanes (see below);
//  3. broadcast down — retracing the levels inward, each leader
//     propagates the finished buffer verbatim to its level's
//     participants.
//
// With a plain two-level topology (unstructured labels) this is
// exactly PR 4's three-phase intra-host reduce / leader ring /
// intra-host broadcast.
//
// codec, when non-nil, turns phase 2 into the compressed leader ring:
// the leaders run the wire-level compressed reduce-scatter/all-gather
// (compressedAllReduce) among themselves, with residual as the
// caller-owned error-feedback accumulator, while the intra-host phases
// stay exact float32 — compression where the bytes are expensive, full
// precision where they are nearly free. Only leaders touch residual;
// non-leader ranks' accumulators are left unchanged. The int result is
// the number of encoded payload bytes this rank put on the byte lanes
// (0 for non-leaders and on the uncompressed path). Callers must
// pre-check that the mesh has byte lanes and the op is Sum/Avg
// (meshGroup.CompressedAllReduce does); a byte-lane-less leader
// sub-mesh falls back to quantize-then-ring among the leaders.
//
// The bitwise-identical-on-every-rank guarantee of the ring path is
// preserved: phase 2 leaves every top leader with bitwise-identical
// data (each chunk reduced on exactly one leader, propagated
// verbatim), and the downward broadcasts copy leader bytes verbatim,
// so all ranks agree exactly. Note the reduction ORDER differs from a
// flat ring's, so results can differ from Ring in the low bits for
// inexact float sums — identical across ranks either way, which is the
// invariant DDP needs.
//
// Degenerate layouts fall back to the flat ring: no topology, a single
// host (nothing crosses the network anyway), or a flat topology (one
// rank per host — the hierarchy has nothing to shed).
func hierarchicalAllReduce(m transport.Mesh, tag uint64, data []float32, op ReduceOp, topo *Topology, codec WireCodec, residual []float32) (int, error) {
	k := m.Size()
	if k == 1 {
		return 0, nil
	}
	if topo == nil || !topo.Hierarchical() {
		return 0, ringAllReduce(m, tag, data, op)
	}
	if topo.Size() != k {
		return 0, fmt.Errorf("comm: topology covers %d ranks but mesh has %d", topo.Size(), k)
	}
	rank := m.Rank()
	levels := topo.Levels()

	// Avg folds as Sum through every phase; each rank applies the final
	// 1/world scale to its (bitwise-identical) copy at the end.
	foldOp := op
	if op == Avg {
		foldOp = Sum
	}

	// Phase 1: reduce up, hosts outward. Sub-meshes are stateless rank
	// remappings (Close is a no-op), so each level's view serves both
	// the reduce here and the broadcast in phase 3.
	meshes := make([]transport.Mesh, levels)
	topLeader := false
	for l := levels - 1; l >= 0; l-- {
		parts := topo.phaseParticipants(l, rank)
		if len(parts) > 1 {
			sub, err := transport.NewSubMesh(m, parts)
			if err != nil {
				return 0, err
			}
			meshes[l] = sub
			if err := binomialReduce(sub, tag, data, foldOp); err != nil {
				return 0, err
			}
		}
		if parts[0] != rank {
			// Not this level's leader: the next frame this rank sees is
			// the phase-3 broadcast back down.
			break
		}
		topLeader = l == 0
	}

	// Phase 2: the outermost leaders alone AllReduce their partials —
	// compressed over the byte lanes when a codec rides along.
	wire := 0
	if topLeader {
		leaders := topo.levelLeaders(0)
		if len(leaders) > 1 {
			sub, err := transport.NewSubMesh(m, leaders)
			if err != nil {
				return 0, err
			}
			if codec != nil {
				wire, err = compressedAllReduce(sub, tag, data, foldOp, codec, residual, Ring, nil)
				if err != nil {
					return 0, err
				}
			} else if err := ringAllReduce(sub, tag, data, foldOp); err != nil {
				return 0, err
			}
		}
	}

	// Phase 3: broadcast down, outermost inward, retracing phase 1's
	// sub-meshes; each level's leader is local rank 0 of its sub-mesh.
	for l := 0; l < levels; l++ {
		if meshes[l] == nil {
			continue
		}
		if err := binomialBroadcast(meshes[l], tag, data, 0); err != nil {
			return 0, err
		}
	}

	if op == Avg {
		scale := 1 / float32(k)
		for i := range data {
			data[i] *= scale
		}
	}
	return wire, nil
}
