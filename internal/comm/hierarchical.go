package comm

import (
	"fmt"

	"repro/internal/transport"
)

// hierarchicalAllReduce is the topology-aware AllReduce (Section 6.1's
// cross-machine bandwidth collapse, answered with the multi-ring
// structure of Kumar et al.): it reduces within each host first so only
// one rank's worth of data per host ever crosses the network.
//
// Three phases, each built from a sub-mesh carved out of m by rank
// remapping:
//
//  1. intra-host reduce — every host folds its members' contributions
//     onto the host leader (lowest rank on the host) along a binomial
//     tree;
//  2. inter-host ring — the leaders alone run the bandwidth-optimal
//     ring AllReduce, so each NIC carries 2(h-1)/h of ONE buffer
//     instead of GPUsPerServer of them;
//  3. intra-host broadcast — each leader propagates the finished
//     buffer verbatim back to its host's members.
//
// The bitwise-identical-on-every-rank guarantee of the ring path is
// preserved: phase 2 leaves every leader with bitwise-identical data
// (each chunk reduced on exactly one leader, propagated verbatim), and
// phase 3 copies leader bytes verbatim, so all ranks agree exactly.
// Note the reduction ORDER differs from a flat ring's, so results can
// differ from Ring in the low bits for inexact float sums — identical
// across ranks either way, which is the invariant DDP needs.
//
// Degenerate layouts fall back to the flat ring: no topology, a single
// host (nothing crosses the network anyway), or a flat topology (one
// rank per host — the hierarchy has nothing to shed).
func hierarchicalAllReduce(m transport.Mesh, tag uint64, data []float32, op ReduceOp, topo *Topology) error {
	k := m.Size()
	if k == 1 {
		return nil
	}
	if topo == nil || !topo.Hierarchical() {
		return ringAllReduce(m, tag, data, op)
	}
	if topo.Size() != k {
		return fmt.Errorf("comm: topology covers %d ranks but mesh has %d", topo.Size(), k)
	}
	rank := m.Rank()
	hostRanks := topo.HostRanks(rank)
	leader := hostRanks[0]

	// Avg folds as Sum through every phase; each rank applies the final
	// 1/world scale to its (bitwise-identical) copy at the end.
	foldOp := op
	if op == Avg {
		foldOp = Sum
	}

	// One intra-host view serves both phase 1 and phase 3 (sub-meshes
	// are stateless rank remappings; Close is a no-op).
	var hostMesh transport.Mesh
	if len(hostRanks) > 1 {
		var err error
		hostMesh, err = transport.NewSubMesh(m, hostRanks)
		if err != nil {
			return err
		}
	}

	// Phase 1: fold this host's contributions onto its leader.
	if hostMesh != nil {
		if err := binomialReduce(hostMesh, tag, data, foldOp); err != nil {
			return err
		}
	}

	// Phase 2: leaders alone AllReduce their per-host partials around
	// the inter-host ring. Non-leaders wait (their next message is the
	// phase-3 broadcast from their leader).
	if rank == leader {
		leaders := topo.Leaders()
		if len(leaders) > 1 {
			sub, err := transport.NewSubMesh(m, leaders)
			if err != nil {
				return err
			}
			if err := ringAllReduce(sub, tag, data, foldOp); err != nil {
				return err
			}
		}
	}

	// Phase 3: propagate the finished buffer verbatim within each host.
	if hostMesh != nil {
		if err := binomialBroadcast(hostMesh, tag, data, 0); err != nil {
			return err
		}
	}

	if op == Avg {
		scale := 1 / float32(k)
		for i := range data {
			data[i] *= scale
		}
	}
	return nil
}

// binomialReduce folds every rank's data onto rank 0 along a binomial
// tree (the reduce-up half of treeAllReduce): at each round, odd
// multiples of `mask` send to their even neighbour and drop out. The
// accumulation order on each receiver is fixed by the tree, so the
// result on rank 0 is deterministic. Non-root ranks' data is left
// partially reduced — callers must overwrite it (the Hierarchical
// algorithm broadcasts the finished buffer back in its last phase).
func binomialReduce(m transport.Mesh, tag uint64, data []float32, op ReduceOp) error {
	k := m.Size()
	rank := m.Rank()
	for mask := 1; mask < k; mask <<= 1 {
		if rank&mask != 0 {
			return m.Send(rank-mask, tag, data)
		}
		peer := rank + mask
		if peer < k {
			buf, err := m.Recv(peer, tag)
			if err != nil {
				return err
			}
			if len(buf) != len(data) {
				return fmt.Errorf("comm: reduce size mismatch: got %d want %d", len(buf), len(data))
			}
			reduceInto(data, buf, op)
		}
	}
	return nil
}
