package comm

import (
	"runtime"
	"sync"
)

// reduceParallelThreshold is the element count above which reduceInto
// fans the fold out across goroutines. Below it the goroutine
// create/join overhead exceeds the arithmetic saved; the crossover is
// measured by BenchmarkReduceIntoCrossover (on the benchmarked
// hardware the parallel path wins from a few tens of KiB up, with a
// wide flat region around this value — large DDP buckets are 1–2
// orders of magnitude past it either way).
const reduceParallelThreshold = 64 << 10

// reduceInto folds src into dst elementwise under op (Avg folds as Sum;
// the caller scales at the end). Large slices are folded in parallel
// chunks: the operation is elementwise with disjoint chunks, so the
// result is bitwise-independent of the split — parallelism never
// perturbs the cross-rank determinism the collectives guarantee. The
// local fold sits on the collective hot path (every ring/tree step
// runs one), so this is where big buckets earn back multiple cores.
func reduceInto(dst, src []float32, op ReduceOp) {
	n := len(dst)
	if n < reduceParallelThreshold {
		reduceRange(dst, src, op)
		return
	}
	// Cap the fan-out so each worker keeps a meaningful chunk.
	workers := runtime.GOMAXPROCS(0)
	if max := n / (reduceParallelThreshold / 2); workers > max {
		workers = max
	}
	if workers <= 1 {
		reduceRange(dst, src, op)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := chunkBounds(n, workers, w)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			reduceRange(dst[lo:hi], src[lo:hi], op)
		}(lo, hi)
	}
	wg.Wait()
}

// reduceRange is the serial elementwise fold underlying reduceInto.
func reduceRange(dst, src []float32, op ReduceOp) {
	switch op {
	case Sum, Avg:
		for i := range dst {
			dst[i] += src[i]
		}
	case Prod:
		for i := range dst {
			dst[i] *= src[i]
		}
	case Min:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	case Max:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	default:
		panic("comm: unknown reduce op")
	}
}
