package chaos

import "reflect"

// shrinkBudget caps how many candidate runs one Shrink may spend.
// Schedules are bounded (≤ 12 steps, ≤ 6 events), so a greedy pass
// converges well inside it.
const shrinkBudget = 24

// Shrink minimizes a failing schedule: first greedily dropping events,
// then pulling numbers down (total steps, event steps, straggle spans,
// injected delays, checkpoint cadence, codec). A candidate is accepted
// only if it still violates the ORIGINAL first violated invariant, so
// the reproducer that comes out demonstrates the same defect that went
// in. Returns the minimal schedule and its report; if s does not fail,
// returns it unchanged.
func Shrink(s Schedule, opts Options) (Schedule, *Report) {
	rep := RunWithOptions(s, opts)
	if !rep.Failed() {
		return s, rep
	}
	inv := rep.Violations[0].Invariant
	budget := shrinkBudget
	failsSame := func(c Schedule) (*Report, bool) {
		if budget <= 0 {
			return nil, false
		}
		budget--
		r := RunWithOptions(c, opts)
		return r, r.Has(inv)
	}
	cur, curRep := s, rep

	// Pass 1: drop events one at a time, to a fixpoint.
	for changed := true; changed && budget > 0; {
		changed = false
		for i := 0; i < len(cur.Events) && budget > 0; i++ {
			c := cur
			c.Events = append(append([]Event(nil), cur.Events[:i]...), cur.Events[i+1:]...)
			c = Normalize(c)
			if reflect.DeepEqual(c, cur) {
				continue
			}
			if r, ok := failsSame(c); ok {
				cur, curRep = c, r
				changed = true
				i--
			}
		}
	}

	// Pass 2: numeric and structural reduction, greedy to a fixpoint.
	for budget > 0 {
		improved := false
		for _, m := range shrinkMutants(cur) {
			if budget <= 0 {
				break
			}
			if reflect.DeepEqual(m, cur) {
				continue
			}
			if r, ok := failsSame(m); ok {
				cur, curRep = m, r
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return cur, curRep
}

// shrinkMutants proposes one-change reductions of c, aggressive first.
// Every mutant is normalized, so it is runnable (or collapses back to
// c and is skipped by the caller).
func shrinkMutants(c Schedule) []Schedule {
	var out []Schedule
	add := func(m Schedule) { out = append(out, Normalize(m)) }
	clone := func() []Event { return append([]Event(nil), c.Events...) }
	if c.Steps > minStepsBound {
		m := c
		m.Steps = (c.Steps + minStepsBound) / 2
		add(m)
		m.Steps = c.Steps - 1
		add(m)
	}
	if c.CkptEvery > 0 {
		m := c
		m.CkptEvery = 0
		add(m)
	}
	if c.Codec != "" {
		m := c
		m.Codec = ""
		add(m)
	}
	for i, ev := range c.Events {
		if ev.Step > 0 {
			m := c
			m.Events = clone()
			m.Events[i].Step = ev.Step / 2
			add(m)
		}
		if ev.Count > minStraggleN {
			m := c
			m.Events = clone()
			m.Events[i].Count = (ev.Count + minStraggleN) / 2
			add(m)
		}
		if ev.SlowMs > minSlowMs {
			m := c
			m.Events = clone()
			m.Events[i].SlowMs = (ev.SlowMs + minSlowMs) / 2
			add(m)
		}
	}
	return out
}
