package chaos

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/ckpt"
	"repro/internal/elastic"
	"repro/internal/trace"
)

// checkInvariants runs every system-wide check against the finished
// engine state. A harness failure (timeout, setup error) voids the
// rest: the cluster state is not meaningful evidence then.
func (e *engine) checkInvariants(restore int64) {
	e.mu.Lock()
	e.rep.Violations = append(e.rep.Violations, e.conflicts...)
	flags := append([]elastic.StragglerFlag(nil), e.flags...)
	e.mu.Unlock()
	if e.rep.Has(invHarness) {
		return
	}
	ws := e.snapshotWorkers()
	e.checkExits(ws)
	e.checkGenLinearity()
	e.checkTrajectory(restore)
	e.checkDurability(ws, restore)
	e.checkBitwise(ws, restore)
	e.checkSpans(ws)
	e.checkStraggler(flags)
}

func (e *engine) findWorker(ws []*runWorker, wp workerPlan) *runWorker {
	for _, w := range ws {
		if w.plan.ord == wp.ord && w.plan.era == wp.era && w.plan.joinStep == wp.joinStep {
			return w
		}
	}
	return nil
}

// checkExits: every planned instance spawned and exited the way the
// schedule dictates — killed workers with ErrKilled, leavers and
// finishers cleanly at their exact step count, disk-fault victims with
// a checkpoint error.
func (e *engine) checkExits(ws []*runWorker) {
	for _, wp := range e.p.workers {
		w := e.findWorker(ws, wp)
		if w == nil {
			e.rep.add(invTrajectory, fmt.Sprintf("planned instance w%d/era%d never spawned", wp.ord, wp.era))
			continue
		}
		err := w.runErr()
		switch wp.exit {
		case exitClean:
			if err != nil {
				e.rep.add(invExit, fmt.Sprintf("%s/era%d: expected clean exit, got %v", w.id, wp.era, err))
			} else if wp.exitStep >= 0 && w.agent.Step() != wp.exitStep {
				e.rep.add(invExit, fmt.Sprintf("%s/era%d: exited at step %d, expected %d",
					w.id, wp.era, w.agent.Step(), wp.exitStep))
			}
		case exitKilled:
			if !errors.Is(err, elastic.ErrKilled) {
				e.rep.add(invExit, fmt.Sprintf("%s/era%d: expected ErrKilled, got %v", w.id, wp.era, err))
			}
		case exitError:
			if err == nil || errors.Is(err, elastic.ErrKilled) {
				e.rep.add(invExit, fmt.Sprintf("%s/era%d: expected a fault error, got %v", w.id, wp.era, err))
			}
		}
	}
}

// checkGenLinearity: the recorded generation history is one linear CAS
// chain — created as 0, then strict +1 increments, each starting from
// the previous committed value. A fork or skip means two generations
// were live at once.
func (e *engine) checkGenLinearity() {
	hist := e.rec.history()
	if len(hist) == 0 {
		e.rep.add(invGenLinear, "no generation transitions recorded")
		return
	}
	if hist[0][0] != "" || hist[0][1] != "0" {
		e.rep.add(invGenLinear, fmt.Sprintf("history starts with %q -> %q, want creation at 0", hist[0][0], hist[0][1]))
		return
	}
	prev := hist[0][1]
	for _, sw := range hist[1:] {
		if sw[0] != prev {
			e.rep.add(invGenLinear, fmt.Sprintf("history forks: swap from %q after committed %q", sw[0], prev))
			return
		}
		po, err1 := strconv.Atoi(sw[0])
		pn, err2 := strconv.Atoi(sw[1])
		if err1 != nil || err2 != nil || pn != po+1 {
			e.rep.add(invGenLinear, fmt.Sprintf("non-increment transition %q -> %q", sw[0], sw[1]))
			return
		}
		prev = sw[1]
	}
}

// checkTrajectory: each era's completed steps cover exactly the
// predicted range, each at the predicted world size.
func (e *engine) checkTrajectory(restore int64) {
	m0 := e.stepLog[0]
	for s := int64(0); s < e.p.end0; s++ {
		r, ok := m0[s]
		if !ok {
			e.rep.add(invTrajectory, fmt.Sprintf("era 0 step %d never completed", s))
			continue
		}
		if r.world != e.p.world0[s] {
			e.rep.add(invTrajectory, fmt.Sprintf("era 0 step %d completed at world %d, predicted %d", s, r.world, e.p.world0[s]))
		}
	}
	for s := range m0 {
		if s >= e.p.end0 {
			e.rep.add(invTrajectory, fmt.Sprintf("era 0 completed step %d past its end %d", s, e.p.end0))
		}
	}
	m1 := e.stepLog[1]
	if e.p.killAll == nil {
		if len(m1) != 0 {
			e.rep.add(invTrajectory, fmt.Sprintf("%d era-1 steps completed without a kill-all", len(m1)))
		}
		return
	}
	for s := restore; s < e.p.s.Steps; s++ {
		r, ok := m1[s]
		if !ok {
			e.rep.add(invTrajectory, fmt.Sprintf("era 1 step %d never completed", s))
			continue
		}
		if r.world != e.p.world1[s] {
			e.rep.add(invTrajectory, fmt.Sprintf("era 1 step %d completed at world %d, predicted %d", s, r.world, e.p.world1[s]))
		}
	}
	for s := range m1 {
		if s < restore || s >= e.p.s.Steps {
			e.rep.add(invTrajectory, fmt.Sprintf("era 1 completed step %d outside [%d,%d)", s, restore, e.p.s.Steps))
		}
	}
}

// checkDurability: committed checkpoints are never lost. The restored
// step observed after a kill-all must be what every respawn actually
// restored, and the directory's newest committed checkpoint can only
// move forward from there.
func (e *engine) checkDurability(ws []*runWorker, restore int64) {
	s := e.p.s
	if s.CkptEvery <= 0 {
		return
	}
	meta, err := ckpt.LatestMeta(e.dir)
	hasFinal := err == nil
	if err != nil && !errors.Is(err, ckpt.ErrNoCheckpoint) {
		e.rep.add(invDurability, fmt.Sprintf("final checkpoint state unreadable: %v", err))
		return
	}
	if hasFinal {
		if meta.Step <= 0 || meta.Step > s.Steps || meta.Step%s.CkptEvery != 0 {
			e.rep.add(invDurability, fmt.Sprintf("final committed step %d not a save point of every=%d steps=%d",
				meta.Step, s.CkptEvery, s.Steps))
		}
		if _, _, err := ckpt.Load(e.dir); err != nil {
			e.rep.add(invDurability, fmt.Sprintf("final committed checkpoint does not load: %v", err))
		}
	}
	// A quiet run (no faults) must retain its last save point.
	if len(s.Events) == 0 && s.Steps >= s.CkptEvery {
		want := s.Steps - s.Steps%s.CkptEvery
		if !hasFinal || meta.Step != want {
			got := int64(-1)
			if hasFinal {
				got = meta.Step
			}
			e.rep.add(invDurability, fmt.Sprintf("fault-free run committed step %d, want %d", got, want))
		}
	}
	if e.p.killAll == nil {
		return
	}
	if restore > 0 && !hasFinal {
		e.rep.add(invDurability, fmt.Sprintf("step-%d checkpoint seen before restart is gone", restore))
	}
	if hasFinal && meta.Step < restore {
		e.rep.add(invDurability, fmt.Sprintf("committed step regressed: %d before restart, %d now", restore, meta.Step))
	}
	for _, w := range ws {
		if w.plan.era != 1 || w.plan.joinStep != -1 {
			continue
		}
		m, ok := w.agent.RestoredCheckpoint()
		if restore == 0 {
			if ok {
				e.rep.add(invDurability, fmt.Sprintf("%s/era1 restored step %d; no checkpoint was committed", w.id, m.Step))
			}
			continue
		}
		if !ok {
			e.rep.add(invDurability, fmt.Sprintf("%s/era1 restored nothing; step %d was committed", w.id, restore))
		} else if m.Step != restore {
			e.rep.add(invDurability, fmt.Sprintf("%s/era1 restored step %d, committed newest was %d", w.id, m.Step, restore))
		}
	}
}

// checkBitwise: all clean survivors agree exactly — model parameters,
// optimizer state, and (under a codec) error-feedback residuals — with
// each other and with the failure-free reference replay of the same
// membership lineage.
func (e *engine) checkBitwise(ws []*runWorker, restore int64) {
	var survivors []*runWorker
	for _, w := range ws {
		if w.plan.exit == exitClean && w.plan.exitStep == e.p.s.Steps && w.runErr() == nil {
			survivors = append(survivors, w)
		}
	}
	if len(survivors) == 0 {
		if !e.rep.Failed() {
			e.rep.add(invHarness, "no clean survivor to compare")
		}
		return
	}
	if e.p.s.Strategy != "" {
		e.checkBitwiseSharded(survivors, restore)
		return
	}
	codec := e.p.s.Codec == "1bit"
	base := survivors[0]
	baseParams := chFlattenParams(base.model)
	baseOpt := base.opt.FlatState()
	var baseRes []float32
	if codec {
		if d := base.lastDDP(); d != nil {
			baseRes = d.ResidualState()
		}
	}
	for _, w := range survivors[1:] {
		if i, ok := sameF32(chFlattenParams(w.model), baseParams); !ok {
			e.rep.add(invBitwise, fmt.Sprintf("survivors %s and %s disagree on params (index %d)", base.id, w.id, i))
		}
		if i, ok := sameF32(w.opt.FlatState(), baseOpt); !ok {
			e.rep.add(invBitwise, fmt.Sprintf("survivors %s and %s disagree on optimizer state (index %d)", base.id, w.id, i))
		}
		if codec {
			var res []float32
			if d := w.lastDDP(); d != nil {
				res = d.ResidualState()
			}
			if i, ok := sameF32(res, baseRes); !ok {
				e.rep.add(invBitwise, fmt.Sprintf("survivors %s and %s disagree on residuals (index %d)", base.id, w.id, i))
			}
		}
	}
	ref, err := runReference(e.p, restore)
	if err != nil {
		e.rep.add(invHarness, err.Error())
		return
	}
	if len(ref.workers) == 0 {
		e.rep.add(invHarness, "reference replay produced no workers")
		return
	}
	r0 := ref.workers[0]
	if i, ok := sameF32(baseParams, chFlattenParams(r0.model)); !ok {
		e.rep.add(invBitwise, fmt.Sprintf("survivor %s params diverge from the failure-free reference (index %d)", base.id, i))
	}
	if i, ok := sameF32(baseOpt, r0.opt.FlatState()); !ok {
		e.rep.add(invBitwise, fmt.Sprintf("survivor %s optimizer state diverges from the failure-free reference (index %d)", base.id, i))
	}
	if codec && r0.d != nil {
		if i, ok := sameF32(baseRes, r0.d.ResidualState()); !ok {
			e.rep.add(invBitwise, fmt.Sprintf("survivor %s residuals diverge from the failure-free reference (index %d)", base.id, i))
		}
	}
}

// checkBitwiseSharded is the sharded-run (ZeRO-2/3) form of the bitwise
// invariant. Survivors have no SGD instance to read (fsdp fuses the
// optimizer into Backward) and ZeRO-3 survivors hold only their own
// parameter shards in memory, so the full end state is asserted through
// the final committed checkpoint — which sharded schedules guarantee
// exists at the final step (CkptEvery is forced to 1). The oracle is
// still the plain-DDP reference replay: a ZeRO run over Ring groups IS
// the DDP+SGD trajectory, bitwise.
func (e *engine) checkBitwiseSharded(survivors []*runWorker, restore int64) {
	ref, err := runReference(e.p, restore)
	if err != nil {
		e.rep.add(invHarness, err.Error())
		return
	}
	if len(ref.workers) == 0 {
		e.rep.add(invHarness, "reference replay produced no workers")
		return
	}
	r0 := ref.workers[0]
	refParams := chFlattenParams(r0.model)
	refOpt := r0.opt.FlatState()
	if e.p.s.Strategy == "zero2" {
		// ZeRO-2 replicates parameters, so every survivor holds the full
		// set in memory and must match the reference directly. (ZeRO-3
		// member tensors are freed shards; skip the in-memory compare.)
		for _, w := range survivors {
			if i, ok := sameF32(chFlattenParams(w.model), refParams); !ok {
				e.rep.add(invBitwise, fmt.Sprintf("survivor %s params diverge from the failure-free reference (index %d)", w.id, i))
			}
		}
	}
	snap, man, err := ckpt.Load(e.dir)
	if err != nil {
		e.rep.add(invBitwise, fmt.Sprintf("sharded run left no loadable final checkpoint: %v", err))
		return
	}
	if man.Meta.Step != e.p.s.Steps {
		e.rep.add(invBitwise, fmt.Sprintf("final sharded checkpoint at step %d, want %d", man.Meta.Step, e.p.s.Steps))
	}
	m := chModel()
	var sink flatSink
	if _, err := snap.Apply(m, &sink); err != nil {
		e.rep.add(invBitwise, fmt.Sprintf("final sharded checkpoint does not apply: %v", err))
		return
	}
	if i, ok := sameF32(chFlattenParams(m), refParams); !ok {
		e.rep.add(invBitwise, fmt.Sprintf("final checkpoint params diverge from the failure-free reference (index %d)", i))
	}
	if i, ok := sameF32(sink.flat, refOpt); !ok {
		e.rep.add(invBitwise, fmt.Sprintf("final checkpoint optimizer state diverges from the failure-free reference (index %d)", i))
	}
}

// chaosPhases is the recovery-phase vocabulary (mirrors reconfigure()).
var chaosPhases = map[string]bool{
	"teardown":      true,
	"rendezvous":    true,
	"mesh-build":    true,
	"state-sync":    true,
	"ddp-swap":      true,
	"residual-sync": true,
}

// spanTiles is the structural span invariant: phases partition the
// recovery root exactly — contiguous, named from the vocabulary, first
// teardown, durations summing to precisely the root's duration.
func spanTiles(root *trace.Span) error {
	if root.Name != "recovery" {
		return fmt.Errorf("root span named %q, want recovery", root.Name)
	}
	if len(root.Children) == 0 {
		return fmt.Errorf("recovery span has no phases")
	}
	var sum time.Duration
	cursor := root.Start
	for i, c := range root.Children {
		if !chaosPhases[c.Name] {
			return fmt.Errorf("phase %d has unexpected name %q", i, c.Name)
		}
		if !c.Start.Equal(cursor) {
			return fmt.Errorf("phase %q starts at %v, want %v (gap or overlap)", c.Name, c.Start, cursor)
		}
		if c.End.IsZero() {
			return fmt.Errorf("phase %q left open inside a closed recovery", c.Name)
		}
		sum += c.Duration()
		cursor = c.End
	}
	if !cursor.Equal(root.End) {
		return fmt.Errorf("last phase ends at %v, root at %v", cursor, root.End)
	}
	if sum != root.Duration() {
		return fmt.Errorf("phase durations sum to %v, recovery took %v", sum, root.Duration())
	}
	if root.Children[0].Name != "teardown" {
		return fmt.Errorf("first phase %q, want teardown", root.Children[0].Name)
	}
	return nil
}

// checkSpans: every closed recovery span tiles exactly; open roots are
// recoveries a kill interrupted and carry no obligation. Every clean
// survivor must have produced at least one closed recovery (its
// initial formation, if nothing else).
func (e *engine) checkSpans(ws []*runWorker) {
	for _, w := range ws {
		closed := 0
		for _, root := range w.tracer.Roots() {
			if root.End.IsZero() {
				continue
			}
			closed++
			if err := spanTiles(root); err != nil {
				e.rep.add(invSpans, fmt.Sprintf("%s/era%d: %v", w.id, w.plan.era, err))
			}
		}
		if closed == 0 && w.plan.exit == exitClean && w.runErr() == nil {
			e.rep.add(invSpans, fmt.Sprintf("%s/era%d exited cleanly with no closed recovery span", w.id, w.plan.era))
		}
	}
}

// checkStraggler: a viable synthetic straggler (long, stable span on a
// surviving worker) must have produced a flagged transition. This is
// positive-only: absence-of-flag assertions on non-viable spans would
// race the detector's gossip cadence.
func (e *engine) checkStraggler(flags []elastic.StragglerFlag) {
	for _, sp := range e.p.straggle {
		if !sp.viable {
			continue
		}
		id := fmt.Sprintf("w%d", sp.ord)
		found := false
		for _, f := range flags {
			if f.Worker == id && f.Flagged {
				found = true
				break
			}
		}
		if !found {
			e.rep.add(invStraggler, fmt.Sprintf(
				"viable straggler %s (era %d, steps [%d,%d), +%dms/step) was never flagged",
				id, sp.era, sp.start, sp.start+sp.count, sp.slowMs))
		}
	}
}
