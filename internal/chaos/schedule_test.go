package chaos

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/testutil"
)

// TestNormalizeIdempotent is the normal-form contract: whatever goes
// in, Normalize's output must Validate (i.e. re-normalizing changes
// nothing). Fuzzed over both schedule sources.
func TestNormalizeIdempotent(t *testing.T) {
	rng := testutil.SeededRand(t)
	for i := 0; i < 200; i++ {
		s := Schedule{
			Seed:      int64(i),
			World:     rng.Intn(8) - 1,
			Steps:     rng.Int63n(30) - 2,
			CkptEvery: rng.Int63n(6) - 1,
		}
		if rng.Intn(2) == 0 {
			s.Codec = []string{"1bit", "2bit", "zlib"}[rng.Intn(3)]
		}
		n := rng.Intn(9)
		kinds := []EventKind{EvKill, EvKillMidStep, EvLeave, EvJoin, EvKillAll,
			EvStraggle, EvHang, EvPartition, EvDiskFault, EvSlowDisk, EventKind("bogus")}
		for j := 0; j < n; j++ {
			s.Events = append(s.Events, Event{
				Kind:   kinds[rng.Intn(len(kinds))],
				Worker: rng.Intn(7) - 1,
				Step:   rng.Int63n(20) - 3,
				Count:  rng.Int63n(10) - 1,
				SlowMs: rng.Intn(400) - 10,
			})
		}
		if err := Validate(Normalize(s)); err != nil {
			t.Fatalf("Normalize not idempotent on %+v: %v", s, err)
		}
	}
}

// TestFromBytesNormalForm: every byte string must decode to a schedule
// the corpus contract accepts — the native fuzz target depends on it.
func TestFromBytesNormalForm(t *testing.T) {
	rng := testutil.SeededRand(t)
	for i := 0; i < 200; i++ {
		buf := make([]byte, rng.Intn(26))
		rng.Read(buf)
		s := FromBytes(buf)
		if err := Validate(s); err != nil {
			t.Fatalf("FromBytes(%v) not normal form: %v\n%s", buf, err, s.Encode())
		}
	}
}

// TestGenerateDeterministic: the seed is the run identity.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a := Generate(rand.New(rand.NewSource(seed)), seed)
		b := Generate(rand.New(rand.NewSource(seed)), seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two draws differ:\n%s\n%s", seed, a.Encode(), b.Encode())
		}
		if err := Validate(a); err != nil {
			t.Fatalf("seed %d: generated schedule not normal form: %v", seed, err)
		}
	}
}

func TestNormalizeClampsAndDrops(t *testing.T) {
	cases := []struct {
		name string
		in   Schedule
		want func(t *testing.T, out Schedule)
	}{
		{"world-clamped", Schedule{World: 99, Steps: 5}, func(t *testing.T, out Schedule) {
			if out.World != maxWorldBound {
				t.Fatalf("world = %d, want %d", out.World, maxWorldBound)
			}
		}},
		{"steps-clamped", Schedule{World: 2, Steps: 99}, func(t *testing.T, out Schedule) {
			if out.Steps != maxStepsBound {
				t.Fatalf("steps = %d, want %d", out.Steps, maxStepsBound)
			}
		}},
		{"codec-repaired", Schedule{World: 2, Steps: 4, Codec: "zstd"}, func(t *testing.T, out Schedule) {
			if out.Codec != "1bit" {
				t.Fatalf("codec = %q, want 1bit", out.Codec)
			}
		}},
		{"unknown-target-dropped", Schedule{World: 2, Steps: 4, Events: []Event{
			{Kind: EvKill, Worker: 7, Step: 1}}}, func(t *testing.T, out Schedule) {
			if len(out.Events) != 0 {
				t.Fatalf("events = %+v, want none", out.Events)
			}
		}},
		{"second-kill-all-dropped", Schedule{World: 2, Steps: 6, Events: []Event{
			{Kind: EvKillAll, Step: 2}, {Kind: EvKillAll, Step: 4}}}, func(t *testing.T, out Schedule) {
			if len(out.Events) != 1 || out.Events[0].Step != 2 {
				t.Fatalf("events = %+v, want one kill-all at step 2", out.Events)
			}
		}},
		{"disk-fault-needs-ckpt", Schedule{World: 2, Steps: 4, Events: []Event{
			{Kind: EvDiskFault, Worker: 0, Step: 1}}}, func(t *testing.T, out Schedule) {
			if len(out.Events) != 0 {
				t.Fatalf("events = %+v, want none (no checkpointing)", out.Events)
			}
		}},
		{"expensive-budget", Schedule{World: 4, Steps: 6, Events: []Event{
			{Kind: EvHang, Worker: 0, Step: 1},
			{Kind: EvPartition, Worker: 1, Step: 2},
			{Kind: EvHang, Worker: 2, Step: 3}}}, func(t *testing.T, out Schedule) {
			if len(out.Events) != maxExpensive {
				t.Fatalf("events = %+v, want %d (expensive budget)", out.Events, maxExpensive)
			}
		}},
		{"join-past-cap-dropped", Schedule{World: 4, Steps: 6, Events: []Event{
			{Kind: EvJoin, Step: 2}}}, func(t *testing.T, out Schedule) {
			if len(out.Events) != 0 {
				t.Fatalf("events = %+v, want none (world at cap)", out.Events)
			}
		}},
		{"join-ordinal-rewritten", Schedule{World: 2, Steps: 6, Events: []Event{
			{Kind: EvJoin, Worker: 0, Step: 2}, {Kind: EvJoin, Worker: 0, Step: 3}}}, func(t *testing.T, out Schedule) {
			if len(out.Events) != 2 || out.Events[0].Worker != 2 || out.Events[1].Worker != 3 {
				t.Fatalf("events = %+v, want join ordinals 2 then 3", out.Events)
			}
		}},
		{"last-worker-protected", Schedule{World: 2, Steps: 4, Events: []Event{
			{Kind: EvKill, Worker: 0, Step: 1}, {Kind: EvKill, Worker: 1, Step: 2}}}, func(t *testing.T, out Schedule) {
			if len(out.Events) != 1 {
				t.Fatalf("events = %+v, want only the first kill (final worker protected)", out.Events)
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out := Normalize(tc.in)
			if err := Validate(out); err != nil {
				t.Fatalf("not normal form: %v", err)
			}
			tc.want(t, out)
		})
	}
}

func TestValidateRejectsRepairable(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
	}{
		{"world-too-small", Schedule{World: 1, Steps: 4}},
		{"steps-too-large", Schedule{World: 2, Steps: 99}},
		{"bad-codec", Schedule{World: 2, Steps: 4, Codec: "zstd"}},
		{"dead-target", Schedule{World: 2, Steps: 4, Events: []Event{{Kind: EvKill, Worker: 5, Step: 1}}}},
		{"unsorted-after-normalize", Schedule{World: 3, Steps: 5, Events: []Event{
			{Kind: EvKill, Worker: 0, Step: 3}, {Kind: EvKill, Worker: 1, Step: 1}}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if err := Validate(tc.s); err == nil {
				t.Fatalf("Validate accepted %+v", tc.s)
			}
		})
	}
}

// TestPlanPrediction pins the analyzer's membership timeline on a
// composite schedule: era 0 loses a worker and gains a joiner, a
// kill-all splits the run, era 1 respawns the survivors.
func TestPlanPrediction(t *testing.T) {
	s := Normalize(Schedule{World: 3, Steps: 8, CkptEvery: 2, Events: []Event{
		{Kind: EvKill, Worker: 1, Step: 1},
		{Kind: EvJoin, Step: 2},
		{Kind: EvKillAll, Step: 5},
	}})
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
	p, err := analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if p.killAll == nil || p.end0 != 5 {
		t.Fatalf("end0 = %d, want 5 (kill-all step)", p.end0)
	}
	// Step 0: all 3. Step 1: w1 killed before completing -> 2. Step 2:
	// joiner w3 arrives -> 3. Steps 3..4: 3.
	wantW0 := []int{3, 2, 3, 3, 3}
	if !reflect.DeepEqual(p.world0, wantW0) {
		t.Fatalf("world0 = %v, want %v", p.world0, wantW0)
	}
	// Era 1 respawns the active set at the kill-all: {0, 2, 3}.
	if !reflect.DeepEqual(p.respawn, []int{0, 2, 3}) {
		t.Fatalf("respawn = %v, want [0 2 3]", p.respawn)
	}
	if p.world1 == nil || len(p.world1) != int(s.Steps) {
		t.Fatalf("world1 = %v, want len %d", p.world1, s.Steps)
	}
	for st := p.killAll.Step; st < s.Steps; st++ {
		if p.world1[st] != 3 {
			t.Fatalf("world1[%d] = %d, want 3", st, p.world1[st])
		}
	}
	// Fates: w1's era-0 instance killed; the other era-0 instances die
	// in the kill-all; the era-1 respawns run to the end.
	type fate struct {
		exit     exitKind
		exitStep int64
	}
	want := map[[2]int]fate{
		{0, 0}: {exitKilled, -1}, {1, 0}: {exitKilled, -1},
		{2, 0}: {exitKilled, -1}, {3, 0}: {exitKilled, -1},
		{0, 1}: {exitClean, 8}, {2, 1}: {exitClean, 8}, {3, 1}: {exitClean, 8},
	}
	if len(p.workers) != len(want) {
		t.Fatalf("workers = %+v, want %d instances", p.workers, len(want))
	}
	for _, w := range p.workers {
		f, ok := want[[2]int{w.ord, w.era}]
		if !ok {
			t.Fatalf("unexpected instance (ord %d, era %d)", w.ord, w.era)
		}
		if w.exit != f.exit || w.exitStep != f.exitStep {
			t.Fatalf("instance (ord %d, era %d): exit %v/%d, want %v/%d",
				w.ord, w.era, w.exit, w.exitStep, f.exit, f.exitStep)
		}
	}
	// Era-1 respawns must cold-start from the checkpoint.
	for _, w := range p.workers {
		if w.era == 1 && w.joinStep == -1 && !w.resume {
			t.Fatalf("era-1 respawn (ord %d) not marked resume", w.ord)
		}
	}
}

// TestStraggleViability pins the detector-obligation rule: a span is
// only asserted when it is long enough, churn-free, and the stable
// world is at least 3 (at world 2 the median-of-two makes the flag
// arithmetically unreachable).
func TestStraggleViability(t *testing.T) {
	viable := func(s Schedule) bool {
		t.Helper()
		p, err := analyze(Normalize(s))
		if err != nil {
			t.Fatal(err)
		}
		if len(p.straggle) != 1 {
			t.Fatalf("straggle spans = %+v, want one", p.straggle)
		}
		return p.straggle[0].viable
	}
	base := Schedule{World: 3, Steps: 8, Events: []Event{
		{Kind: EvStraggle, Worker: 1, Step: 2, Count: 5, SlowMs: 30}}}
	if !viable(base) {
		t.Fatal("stable world-3 span not viable")
	}
	atWorld2 := base
	atWorld2.World = 2
	if viable(atWorld2) {
		t.Fatal("world-2 span must not be viable")
	}
	tooShort := Schedule{World: 3, Steps: 8, Events: []Event{
		{Kind: EvStraggle, Worker: 1, Step: 2, Count: 2, SlowMs: 30}}}
	if viable(tooShort) {
		t.Fatal("2-step span must not be viable")
	}
	churned := Schedule{World: 4, Steps: 8, Events: []Event{
		{Kind: EvStraggle, Worker: 1, Step: 2, Count: 5, SlowMs: 30},
		{Kind: EvKill, Worker: 3, Step: 4}}}
	if viable(churned) {
		t.Fatal("span crossing a membership change must not be viable")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := Normalize(Schedule{World: 3, Steps: 6, Codec: "1bit", CkptEvery: 2, Events: []Event{
		{Kind: EvStraggle, Worker: 1, Step: 1, Count: 4, SlowMs: 20},
		{Kind: EvKillAll, Step: 4},
	}})
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip changed the schedule:\n%s\n%s", s.Encode(), got.Encode())
	}
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Fatal("Decode accepted malformed JSON")
	}
}
