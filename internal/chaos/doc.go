// Package chaos is a seeded, deterministic failure-schedule fuzzer for
// the elastic training stack. It runs real in-process clusters — shared
// store, in-proc process groups, elastic.Agent, ddp — under generated
// schedules of fault events, then checks system-wide invariants that
// the hand-written recovery tests only pin individually.
//
// # Schedules
//
// A Schedule is a replayable scenario: initial world size, step count,
// gradient codec, sharding strategy, checkpoint cadence, and a list of
// Events. A non-empty Strategy ("zero2" or "zero3") trains through
// internal/fsdp instead of ddp: checkpoint cadence is forced to every
// step so each rollback restores exactly the live state (a sharded
// world cannot re-form after churn without a committed checkpoint —
// a lost rank's shards are unrecoverable), and under ZeRO-3 a
// kill-mid-step fires inside the forward gather phase. Each Event
// names a kind (kill, kill-mid-step, hang, partition, leave, join,
// kill-all, disk-fault, slow-disk, straggle), a target worker ordinal,
// and the global step it fires at. Schedules serialize to JSON;
// Generate draws one from a rand.Rand so a seed reproduces the run,
// and FromBytes decodes arbitrary fuzzer bytes into a valid schedule.
//
// # Invariants
//
// After a schedule runs, Run checks: exit codes match the schedule
// (killed workers return ErrKilled, leavers nil, disk-fault victims a
// checkpoint error); the store's generation history is a single linear
// CAS chain; every completed step was executed at exactly one world
// size, matching the world trajectory predicted from the schedule; no
// committed checkpoint step is lost across a kill-all restart; all
// survivors agree bitwise on model, optimizer, and error-feedback
// residual state, and agree with a failure-free reference replay of
// the same membership lineage; every recovery span is exactly tiled by
// its phases; and a viable synthetic straggler is flagged by the
// detector (an unflagged straggler is itself a violation).
//
// # Shrinking and replay
//
// Shrink reduces a failing schedule — dropping events, then shrinking
// steps, counts, and delays — while preserving the original violated
// invariant, and the minimal reproducer's JSON replays verbatim
// through Replay. testdata/corpus holds known-interesting schedules
// re-executed by the corpus test; FuzzElasticSchedule feeds go fuzz
// mutations through FromBytes into the same engine.
package chaos
