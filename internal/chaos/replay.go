package chaos

// Replay re-executes a JSON reproducer (Schedule.Encode output)
// verbatim: the schedule must already be in normal form — a reproducer
// that would be silently repaired is not reproducing anything.
func Replay(data []byte) (*Report, error) {
	return ReplayWithOptions(data, Options{})
}

// ReplayWithOptions is Replay under non-default options (e.g. the
// planted-bug canary, whose reproducers only fail with the bug armed).
func ReplayWithOptions(data []byte, opts Options) (*Report, error) {
	s, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if err := Validate(s); err != nil {
		return nil, err
	}
	return RunWithOptions(s, opts), nil
}
