package chaos

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// ---- deterministic training fixture ---------------------------------------
//
// Mirrors the elastic convergence fixture: batches are a pure function
// of (step, rank, world), models initialize from one seed, and state
// sync is a bitwise copy, so an elastic run under a chaos schedule and
// a failure-free reference replay of the same membership lineage must
// agree exactly. The model is kept smaller than the elastic one — a
// schedule runs many cluster lifetimes, not one.

const (
	chIn        = 6
	chHidden    = 8
	chClasses   = 3
	chBatch     = 4
	chLR        = 0.1
	chMom       = 0.9
	chModelSeed = 7
	// Small bucket cap so rebuilds cross several buckets.
	chBucketCap = 256
)

func chModel() nn.Module { return models.NewMLP(chModelSeed, chIn, chHidden, chClasses) }

func chOptimizer(m nn.Module) *optim.SGD {
	opt := optim.NewSGD(m.Parameters(), chLR)
	opt.Momentum = chMom
	return opt
}

// chBatchFor derives the batch purely from its coordinates. Codec runs
// pass (step, 0, 1) for every rank: rank-independent batches keep the
// error-feedback residuals bitwise identical across ranks, so they stay
// comparable to the reference after any membership change.
func chBatchFor(step int64, rank, world int) (*tensor.Tensor, []int) {
	seed := step*1_000_003 + int64(rank)*10_007 + int64(world)*101
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(chBatch, chIn)
	d := x.Data()
	for i := range d {
		d[i] = rng.Float32()*2 - 1
	}
	labels := make([]int, chBatch)
	for i := range labels {
		labels[i] = rng.Intn(chClasses)
	}
	return x, labels
}

func chTrainStep(d *ddp.DDP, opt optim.Optimizer, step int64, rank, world int) error {
	x, labels := chBatchFor(step, rank, world)
	out := d.Forward(autograd.Constant(x))
	loss := autograd.CrossEntropyLoss(out, labels)
	if err := d.Backward(loss); err != nil {
		return err
	}
	opt.Step()
	opt.ZeroGrad()
	return nil
}

func chFlattenParams(m nn.Module) []float32 {
	var out []float32
	for _, p := range m.Parameters() {
		out = append(out, p.Value.Data()...)
	}
	return out
}

// flatSink captures a checkpoint's flattened optimizer state. Sharded
// runs train through fsdp, which fuses the optimizer into Backward —
// there is no SGD instance to apply a restored checkpoint to, so the
// bitwise invariant reads the momentum vector through this sink.
type flatSink struct{ flat []float32 }

func (s *flatSink) Step()                {}
func (s *flatSink) ZeroGrad()            {}
func (s *flatSink) FlatState() []float32 { return s.flat }
func (s *flatSink) SetFlatState(f []float32) error {
	s.flat = append([]float32(nil), f...)
	return nil
}

func sameF32(a, b []float32) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if a[i] != b[i] {
			return i, false
		}
	}
	return 0, true
}

// ---- failure-free reference replay ----------------------------------------

// refWorker is one rank of the reference cluster.
type refWorker struct {
	model nn.Module
	opt   *optim.SGD
	d     *ddp.DDP
	// pendingRes carries the residuals a codec-mode joiner adopts from
	// the state-sync source (SyncResiduals in the elastic run).
	pendingRes []float32
}

// reference replays a plan's membership lineage without failures: the
// same steps at the same world sizes, with joiners adopting state from
// rank 0 exactly like elastic state-sync, and a kill-all modeled as a
// restart from the checkpointed (params, optimizer) with residuals
// reset. Its end state is the oracle the bitwise invariant compares
// survivors against.
type reference struct {
	codec   bool
	workers []*refWorker
}

// phase steps the cluster from start to end at the given world size,
// resizing first: shrink truncates (every rank holds identical state),
// grow clones rank 0 the way elastic state-sync + residual-sync would.
func (rf *reference) phase(start, end int64, world int) error {
	if world < 1 {
		return fmt.Errorf("chaos reference: phase [%d,%d) at world %d", start, end, world)
	}
	if len(rf.workers) > world {
		rf.workers = rf.workers[:world]
	}
	for len(rf.workers) < world {
		m := chModel()
		opt := chOptimizer(m)
		w := &refWorker{model: m, opt: opt}
		if len(rf.workers) > 0 {
			src := rf.workers[0]
			if err := nn.CopyParameters(m, src.model); err != nil {
				return fmt.Errorf("chaos reference: joiner params: %w", err)
			}
			if err := opt.SetFlatState(src.opt.FlatState()); err != nil {
				return fmt.Errorf("chaos reference: joiner optimizer: %w", err)
			}
			if rf.codec && src.d != nil {
				w.pendingRes = append([]float32(nil), src.d.ResidualState()...)
			}
		}
		rf.workers = append(rf.workers, w)
	}
	if start >= end {
		return nil
	}
	groups := comm.NewInProcGroups(world, comm.Options{})
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := range rf.workers {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := rf.workers[r]
			if w.d == nil {
				opts := ddp.Options{BucketCapBytes: chBucketCap, SkipInitialBroadcast: true}
				if rf.codec {
					opts.NewCodec = func() comm.Codec { return &comm.OneBitCodec{} }
				}
				d, err := ddp.New(w.model, groups[r], opts)
				if err != nil {
					errs[r] = err
					return
				}
				if w.pendingRes != nil {
					if err := d.SetResidualState(w.pendingRes); err != nil {
						errs[r] = err
						return
					}
					w.pendingRes = nil
				}
				w.d = d
			} else if err := w.d.SetProcessGroup(groups[r]); err != nil {
				errs[r] = err
				return
			}
			for s := start; s < end; s++ {
				rank, rw := r, world
				if rf.codec {
					rank, rw = 0, 1
				}
				if err := chTrainStep(w.d, w.opt, s, rank, rw); err != nil {
					errs[r] = fmt.Errorf("ref step %d: %w", s, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for _, g := range groups {
		g.Close()
	}
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("chaos reference rank %d: %v", r, err)
		}
	}
	return nil
}

// reset models the kill-all boundary: what survives the restart is
// exactly the checkpoint — params and optimizer state, never residuals.
// restore == 0 means nothing was committed and the respawned cluster
// starts fresh from the model seed.
func (rf *reference) reset(restore int64) error {
	if restore == 0 || len(rf.workers) == 0 {
		rf.workers = nil
		return nil
	}
	src := rf.workers[0]
	m := chModel()
	opt := chOptimizer(m)
	if err := nn.CopyParameters(m, src.model); err != nil {
		return fmt.Errorf("chaos reference: restart params: %w", err)
	}
	if err := opt.SetFlatState(src.opt.FlatState()); err != nil {
		return fmt.Errorf("chaos reference: restart optimizer: %w", err)
	}
	rf.workers = []*refWorker{{model: m, opt: opt}}
	return nil
}

// runReference replays the plan's lineage. For a kill-all run, era 0
// contributes only steps [0, restore) — everything past the restored
// checkpoint was rolled back — and era 1 re-executes [restore, Steps).
func runReference(p *plan, restore int64) (*reference, error) {
	rf := &reference{codec: p.s.Codec == "1bit"}
	segs := func(wt []int, start, end int64) error {
		for at := start; at < end; {
			w := wt[at]
			to := at + 1
			for to < end && wt[to] == w {
				to++
			}
			if err := rf.phase(at, to, w); err != nil {
				return err
			}
			at = to
		}
		return nil
	}
	if p.killAll == nil {
		if err := segs(p.world0, 0, p.s.Steps); err != nil {
			return nil, err
		}
		return rf, nil
	}
	if err := segs(p.world0, 0, restore); err != nil {
		return nil, err
	}
	if err := rf.reset(restore); err != nil {
		return nil, err
	}
	if err := segs(p.world1, restore, p.s.Steps); err != nil {
		return nil, err
	}
	return rf, nil
}
