package chaos

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/autograd"
	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/elastic"
	"repro/internal/fsdp"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/store"
	"repro/internal/trace"
)

// Violation is one invariant breach found after a schedule ran.
type Violation struct {
	// Invariant names the violated check; shrinking preserves it.
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// Report is the outcome of running one schedule.
type Report struct {
	Schedule   Schedule    `json:"schedule"`
	Violations []Violation `json:"violations,omitempty"`
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Has reports whether some violation names the given invariant —
// the equivalence shrinking preserves.
func (r *Report) Has(invariant string) bool {
	for _, v := range r.Violations {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

// String renders the report for test logs: "chaos: ok" or one line
// per violation.
func (r *Report) String() string {
	if !r.Failed() {
		return "chaos: ok"
	}
	s := fmt.Sprintf("chaos: %d violation(s):", len(r.Violations))
	for _, v := range r.Violations {
		s += fmt.Sprintf("\n  [%s] %s", v.Invariant, v.Detail)
	}
	return s
}

// Options tweaks a run. The zero value is the production configuration.
type Options struct {
	// PlantResidualResetBug re-introduces the historical
	// residuals-zeroed-on-rebuild bug (ddp's test-only flag) — the
	// harness's own canary: the bitwise invariant must catch it.
	PlantResidualResetBug bool
}

// Run executes a (normal-form) schedule against a real in-process
// elastic cluster and checks every invariant. It never panics on
// invariant failure: inspect Report.Violations.
func Run(s Schedule) *Report { return RunWithOptions(s, Options{}) }

// Invariant names used in Report.Violations.
const (
	invSchedule   = "schedule"   // schedule not executable
	invHarness    = "harness"    // the harness itself failed (timeout, setup)
	invExit       = "exit"       // a worker exited differently than planned
	invGenLinear  = "gen-linear" // generation history not a linear CAS chain
	invTrajectory = "trajectory" // realized (step, world) history diverged
	invDurability = "durability" // a committed checkpoint step was lost
	invBitwise    = "bitwise"    // survivors/reference state disagreement
	invSpans      = "spans"      // recovery span not tiled by its phases
	invStraggler  = "straggler"  // viable straggler not flagged
)

// errEventInjected is what an injected fault's StepFunc returns; the
// agent surfaces it as the worker's exit unless a Kill already decided
// the exit.
var errEventInjected = errors.New("chaos: fault injected")

// runBudget bounds one schedule's wall time; past it the run is force
// killed and reported as a harness violation.
const runBudget = 45 * time.Second

// RunWithOptions is Run with knobs.
func RunWithOptions(s Schedule, opts Options) *Report {
	rep := &Report{Schedule: s}
	p, err := analyze(s)
	if err != nil {
		rep.add(invSchedule, err.Error())
		return rep
	}
	dir, err := os.MkdirTemp("", "chaos-ckpt-")
	if err != nil {
		rep.add(invHarness, fmt.Sprintf("temp checkpoint dir: %v", err))
		return rep
	}
	defer os.RemoveAll(dir)

	inner := store.NewInMem(8 * time.Second)
	// Closing the shared store unwinds every goroutine still blocked in
	// it (partitioned delivery helpers included) — the leak-check hinge.
	defer inner.Close()

	e := &engine{
		p:        p,
		opts:     opts,
		rep:      rep,
		inner:    inner,
		rec:      &genRecorder{inner: inner, genKey: "chaos/gen"},
		reg:      comm.NewInProcRegistry(),
		dir:      dir,
		deadline: time.Now().Add(runBudget),
	}
	e.stepLog[0] = map[int64]stepRec{}
	e.stepLog[1] = map[int64]stepRec{}
	e.joinReleased = make([]bool, len(p.joins))

	rdzv, err := elastic.NewRendezvous(elastic.Config{
		Store: e.rec, Prefix: "chaos", PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		rep.add(invHarness, fmt.Sprintf("engine rendezvous: %v", err))
		return rep
	}

	for _, wp := range p.workers {
		if wp.era == 0 && wp.joinStep == -1 {
			if err := e.spawn(wp); err != nil {
				rep.add(invHarness, err.Error())
				e.forceStop()
				e.awaitAll()
				return rep
			}
		}
	}
	ok := e.awaitEra(0)
	var restore int64
	if ok && p.killAll != nil {
		if meta, err := ckpt.LatestMeta(dir); err == nil {
			restore = meta.Step
		} else if !errors.Is(err, ckpt.ErrNoCheckpoint) {
			rep.add(invDurability, fmt.Sprintf("latest checkpoint after kill-all: %v", err))
		}
		e.observedRestore = restore
		// Bump the generation: respawns must not park against the
		// sealed pre-crash round, and any era-0 goroutine still parked
		// in a generation watch gets woken to observe its kill.
		if g, err := rdzv.CurrentGeneration(); err == nil {
			//ddplint:ignore storeerr best-effort wakeup; a lost bump only delays the respawns one round timeout
			rdzv.ProposeGeneration(g)
		}
		for _, wp := range p.workers {
			if wp.era == 1 && wp.joinStep == -1 {
				if err := e.spawn(wp); err != nil {
					rep.add(invHarness, err.Error())
					break
				}
			}
		}
		ok = e.awaitEra(1)
	}
	e.releaseParked()
	if !e.awaitAll() || !ok {
		e.forceStop()
		e.awaitAll()
	}
	e.checkInvariants(restore)
	return rep
}

func (r *Report) add(invariant, detail string) {
	r.Violations = append(r.Violations, Violation{Invariant: invariant, Detail: detail})
}

// stepRec is one completed training step as observed by the cluster.
type stepRec struct {
	world int
	gen   int
}

type engine struct {
	p    *plan
	opts Options
	rep  *Report

	inner *store.InMem
	rec   *genRecorder
	reg   *comm.InProcRegistry
	dir   string

	deadline        time.Time
	observedRestore int64

	killAllOnce sync.Once

	mu           sync.Mutex
	workers      []*runWorker
	stepLog      [2]map[int64]stepRec
	conflicts    []Violation
	flags        []elastic.StragglerFlag
	joinReleased []bool
}

// runWorker is one spawned (ordinal, era) agent instance.
type runWorker struct {
	plan   workerPlan
	id     string
	agent  *elastic.Agent
	model  nn.Module
	opt    *optim.SGD
	pstore *store.Partitioned
	fault  *faultHook
	tracer *trace.Tracer

	events    []Event
	fired     []bool
	straggles []straggleSpan

	gate     chan struct{} // parked victims block here until released
	gateOnce sync.Once
	done     chan struct{}

	mu     sync.Mutex
	err    error
	parked bool
	d      *ddp.DDP
	// killOnGather arms the sharded mid-step kill: the fsdp
	// TestingOnGather hook fires Kill right before the next ZeRO-3
	// parameter AllGatherV, so peers die blocked inside the gather phase.
	killOnGather bool
}

func (w *runWorker) isParked() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.parked
}

func (w *runWorker) setParked() {
	w.mu.Lock()
	w.parked = true
	w.mu.Unlock()
}

func (w *runWorker) release() { w.gateOnce.Do(func() { close(w.gate) }) }

func (w *runWorker) armGatherKill() {
	w.mu.Lock()
	w.killOnGather = true
	w.mu.Unlock()
}

func (w *runWorker) gatherKillArmed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.killOnGather
}

func (w *runWorker) lastDDP() *ddp.DDP {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.d
}

func (w *runWorker) runErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (e *engine) spawn(wp workerPlan) error {
	w := &runWorker{
		plan: wp,
		id:   fmt.Sprintf("w%d", wp.ord),
		gate: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, ev := range e.p.s.Events {
		if e.p.eraOf(ev) != wp.era || ev.Worker != wp.ord {
			continue
		}
		switch ev.Kind {
		case EvKill, EvKillMidStep, EvHang, EvPartition, EvLeave, EvDiskFault, EvSlowDisk:
			w.events = append(w.events, ev)
		}
	}
	w.fired = make([]bool, len(w.events))
	for _, sp := range e.p.straggle {
		if sp.ord == wp.ord && sp.era == wp.era {
			w.straggles = append(w.straggles, sp)
		}
	}
	w.model = chModel()
	w.pstore = store.NewPartitioned(e.rec)
	w.fault = &faultHook{}
	w.tracer = trace.NewTracer()
	// Sharded runs train through fsdp, which fuses the optimizer into
	// Backward — the agent gets no SGD (an untyped nil, so interface
	// checks in the agent see "no optimizer").
	var opt optim.Optimizer
	if e.p.s.Strategy == "" {
		w.opt = chOptimizer(w.model)
		opt = w.opt
	}
	a, err := elastic.NewAgent(e.workerConfig(w), w.model, opt)
	if err != nil {
		return fmt.Errorf("chaos: agent %s era %d: %v", w.id, wp.era, err)
	}
	w.agent = a
	e.mu.Lock()
	e.workers = append(e.workers, w)
	e.mu.Unlock()
	go func() {
		err := a.Run(e.p.s.Steps, e.stepFn(w))
		w.mu.Lock()
		w.err = err
		w.mu.Unlock()
		close(w.done)
	}()
	return nil
}

func (e *engine) workerConfig(w *runWorker) elastic.Config {
	cfg := elastic.Config{
		Store:    w.pstore,
		ID:       w.id,
		Prefix:   "chaos",
		MinWorld: 1,
		MaxWorld: e.p.maxWorld,
		Grace:    300 * time.Millisecond,
		// Tight liveness so lease-detected faults (hang, partition,
		// disk-fault) resolve in ~1s each.
		HeartbeatInterval: 5 * time.Millisecond,
		LeaseTimeout:      time.Second,
		PollInterval:      2 * time.Millisecond,
		RoundTimeout:      5 * time.Second,
		DrainTimeout:      200 * time.Millisecond,
		MaxRestarts:       12,
		Builder:           &elastic.InProcBuilder{Registry: e.reg, Prefix: "chaos"},
		DDP: ddp.Options{
			BucketCapBytes:                 chBucketCap,
			TestingResetResidualsOnRebuild: e.opts.PlantResidualResetBug,
		},
		Tracer: w.tracer,
	}
	if e.p.s.Codec == "1bit" {
		cfg.DDP.NewCodec = func() comm.Codec { return &comm.OneBitCodec{} }
	}
	if e.p.s.Strategy != "" {
		st, err := fsdp.ParseStrategy(e.p.s.Strategy)
		if err != nil {
			// Normal-form schedules only carry zero2/zero3 (walk).
			panic(err)
		}
		cfg.FSDP = &fsdp.Options{
			Strategy:       st,
			BucketCapBytes: chBucketCap,
			LR:             chLR,
			Momentum:       chMom,
			TestingOnGather: func(int) {
				if w.gatherKillArmed() {
					w.agent.Kill()
				}
			},
		}
	}
	if e.p.s.CkptEvery > 0 {
		cfg.Checkpoint = &elastic.CheckpointConfig{
			Dir:    e.dir,
			Every:  e.p.s.CkptEvery,
			Keep:   2,
			Resume: w.plan.resume,
			Seed:   e.p.s.Seed,
			Fault:  w.fault,
		}
	}
	if len(e.p.straggle) > 0 {
		cfg.Straggler = &elastic.StragglerConfig{
			Window:       4,
			PublishEvery: 2,
			Factor:       2,
			MinPeers:     1,
			MinSamples:   2,
			SelfReported: true,
			OnFlag: func(f elastic.StragglerFlag) {
				e.mu.Lock()
				e.flags = append(e.flags, f)
				e.mu.Unlock()
			},
		}
	}
	return cfg
}

// stepFn builds the instrumented StepFunc of one worker: fire this
// step's scheduled faults, gate on the planned world size, inject
// straggle delay, train, record.
func (e *engine) stepFn(w *runWorker) elastic.StepFunc {
	return func(ctx elastic.StepContext) error {
		w.mu.Lock()
		w.d = ctx.DDP
		w.mu.Unlock()
		era := w.plan.era
		// A kill-all fires at the first entry any era-0 worker makes
		// into its step; the trigger kills itself with everyone else.
		if e.p.killAll != nil && era == 0 && ctx.Step >= e.p.killAll.Step {
			e.killAllOnce.Do(func() { e.triggerKillAll() })
			return errEventInjected
		}
		for i := range w.events {
			ev := w.events[i]
			if w.fired[i] || ctx.Step < ev.Step {
				continue
			}
			w.fired[i] = true
			switch ev.Kind {
			case EvKill:
				w.agent.Kill()
				return errEventInjected
			case EvKillMidStep:
				// Submit the forward pass so peers are left blocked in
				// the backward collectives, then die. In a sharded run
				// the gather hook kills before a ZeRO-3 parameter
				// AllGatherV instead, so peers die blocked inside the
				// gather phase itself (ZeRO-2 forwards are
				// collective-free; the trailing Kill covers them).
				x, _ := chBatchFor(ctx.Step, e.refRank(ctx), e.refWorld(ctx))
				if ctx.FSDP != nil {
					w.armGatherKill()
					ctx.FSDP.Forward(autograd.Constant(x))
				} else {
					ctx.DDP.Forward(autograd.Constant(x))
				}
				w.agent.Kill()
				return errEventInjected
			case EvHang:
				w.agent.StopHeartbeat()
				w.setParked()
				<-w.gate
				return errEventInjected
			case EvPartition:
				w.pstore.SetPartitioned(true)
				w.setParked()
				<-w.gate
				return errEventInjected
			case EvLeave:
				// Depart after this step completes.
				w.agent.Leave()
			case EvDiskFault:
				w.fault.armFail()
			case EvSlowDisk:
				w.fault.armSlow(ev.SlowMs)
			}
		}
		if exp := e.p.expectedWorld(era, ctx.Step); ctx.World < exp {
			// Short of the planned world: admit any joiner scheduled by
			// now, then yield until the membership changes.
			e.releaseJoins(era, ctx.Step)
			return w.agent.AwaitGenerationChange()
		}
		if err := e.train(ctx, w); err != nil {
			return err
		}
		e.record(era, ctx)
		return nil
	}
}

// refRank/refWorld pick the batch coordinates: codec runs use shared
// rank-independent batches (see chBatchFor).
func (e *engine) refRank(ctx elastic.StepContext) int {
	if e.p.s.Codec == "1bit" {
		return 0
	}
	return ctx.Rank
}

func (e *engine) refWorld(ctx elastic.StepContext) int {
	if e.p.s.Codec == "1bit" {
		return 1
	}
	return ctx.World
}

// train executes one step, injecting any straggle delay into the
// compute-only phase (sleep + forward, which contains no collectives)
// and self-reporting that phase's latency to the straggler detector —
// whole-step wall time would include the collectives, which stall at
// the pace of the slowest rank and so cannot attribute slowness.
func (e *engine) train(ctx elastic.StepContext, w *runWorker) error {
	x, labels := chBatchFor(ctx.Step, e.refRank(ctx), e.refWorld(ctx))
	computeStart := time.Now()
	for _, sp := range w.straggles {
		if ctx.Step >= sp.start && ctx.Step < sp.start+sp.count {
			time.Sleep(time.Duration(sp.slowMs) * time.Millisecond)
		}
	}
	if ctx.FSDP != nil {
		out := ctx.FSDP.Forward(autograd.Constant(x))
		compute := time.Since(computeStart)
		loss := autograd.CrossEntropyLoss(out, labels)
		if err := ctx.FSDP.Backward(loss); err != nil {
			return err
		}
		if det := w.agent.Straggler(); det != nil {
			det.Record(compute)
		}
		return nil
	}
	out := ctx.DDP.Forward(autograd.Constant(x))
	compute := time.Since(computeStart)
	loss := autograd.CrossEntropyLoss(out, labels)
	if err := ctx.DDP.Backward(loss); err != nil {
		return err
	}
	ctx.Optimizer.Step()
	ctx.Optimizer.ZeroGrad()
	if det := w.agent.Straggler(); det != nil {
		det.Record(compute)
	}
	return nil
}

func (e *engine) record(era int, ctx elastic.StepContext) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.stepLog[era]
	if prev, ok := m[ctx.Step]; ok {
		if prev.world != ctx.World {
			e.conflicts = append(e.conflicts, Violation{
				Invariant: invTrajectory,
				Detail: fmt.Sprintf("era %d step %d completed at world %d and world %d",
					era, ctx.Step, prev.world, ctx.World),
			})
		}
		return
	}
	m[ctx.Step] = stepRec{world: ctx.World, gen: ctx.Generation}
}

func (e *engine) releaseJoins(era int, step int64) {
	var spawnList []workerPlan
	e.mu.Lock()
	for i, jp := range e.p.joins {
		if jp.era != era || jp.step > step || e.joinReleased[i] {
			continue
		}
		e.joinReleased[i] = true
		for _, wp := range e.p.workers {
			if wp.ord == jp.ord && wp.era == jp.era && wp.joinStep == jp.step {
				spawnList = append(spawnList, wp)
			}
		}
	}
	e.mu.Unlock()
	for _, wp := range spawnList {
		if err := e.spawn(wp); err != nil {
			e.mu.Lock()
			e.conflicts = append(e.conflicts, Violation{Invariant: invHarness, Detail: err.Error()})
			e.mu.Unlock()
		}
	}
}

func (e *engine) snapshotWorkers() []*runWorker {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*runWorker(nil), e.workers...)
}

func (e *engine) triggerKillAll() {
	for _, w := range e.snapshotWorkers() {
		if w.plan.era == 0 && !w.isParked() {
			w.agent.Kill()
		}
	}
}

// awaitEra blocks until every non-parked instance of the era exited.
// Planned-but-unreleased joiners cannot outlive the era: a survivor
// must pass their join step (and thus spawn them) before it can finish.
func (e *engine) awaitEra(era int) bool {
	for {
		if time.Now().After(e.deadline) {
			e.timeout(fmt.Sprintf("era %d did not finish", era))
			return false
		}
		done := true
		for _, w := range e.snapshotWorkers() {
			if w.plan.era != era || w.isParked() {
				continue
			}
			select {
			case <-w.done:
			default:
				done = false
			}
		}
		if done {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (e *engine) releaseParked() {
	for _, w := range e.snapshotWorkers() {
		if w.isParked() {
			w.agent.Kill()
			w.release()
		}
	}
}

func (e *engine) awaitAll() bool {
	for {
		if time.Now().After(e.deadline) {
			e.timeout("run did not finish")
			return false
		}
		done := true
		for _, w := range e.snapshotWorkers() {
			select {
			case <-w.done:
			default:
				done = false
			}
		}
		if done {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// forceStop kills every worker and opens every gate; combined with the
// deferred store close this unwedges any stuck run.
func (e *engine) forceStop() {
	for _, w := range e.snapshotWorkers() {
		w.agent.Kill()
		w.release()
	}
	// Push the deadline out so the post-force awaitAll can still drain.
	e.mu.Lock()
	e.deadline = time.Now().Add(10 * time.Second)
	e.mu.Unlock()
}

func (e *engine) timeout(what string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, v := range e.rep.Violations {
		if v.Invariant == invHarness {
			return // one timeout violation is enough
		}
	}
	e.rep.add(invHarness, fmt.Sprintf("%s within %v: %s", what, runBudget, e.pendingWorkers()))
}

// pendingWorkers names instances that have not exited (diagnostics for
// timeouts). Caller holds e.mu.
func (e *engine) pendingWorkers() string {
	var out string
	for _, w := range e.workers {
		select {
		case <-w.done:
		default:
			out += fmt.Sprintf(" %s/era%d", w.id, w.plan.era)
		}
	}
	if out == "" {
		return " (all exited)"
	}
	return out
}

// ---- fault hook ------------------------------------------------------------

// faultHook is the per-worker checkpoint-disk shim: armFail makes the
// next write error (failing disk), armSlow delays each write (slow
// disk). It runs on the saving goroutine, so the delay stretches the
// save exactly like a slow device would.
type faultHook struct {
	mu     sync.Mutex
	fail   bool
	slowMs int
}

func (f *faultHook) armFail() {
	f.mu.Lock()
	f.fail = true
	f.mu.Unlock()
}

func (f *faultHook) armSlow(ms int) {
	f.mu.Lock()
	f.slowMs = ms
	f.mu.Unlock()
}

func (f *faultHook) BeforeWrite(name string) error {
	f.mu.Lock()
	fail, slow := f.fail, f.slowMs
	f.mu.Unlock()
	if slow > 0 {
		time.Sleep(time.Duration(slow) * time.Millisecond)
	}
	if fail {
		return fmt.Errorf("chaos: injected disk fault writing %s", name)
	}
	return nil
}

// ---- generation recorder ---------------------------------------------------

// genRecorder wraps the shared store and records every successful CAS
// on the generation key, in commit order — the raw material of the
// generation-linearity invariant. The lock spans the inner CAS so the
// recorded order is the commit order.
type genRecorder struct {
	inner  store.Store
	genKey string

	mu    sync.Mutex
	swaps [][2]string // (old, new); old "" means created
}

func (g *genRecorder) CompareAndSwap(key string, old, new []byte) (bool, error) {
	if key != g.genKey {
		return g.inner.CompareAndSwap(key, old, new)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	ok, err := g.inner.CompareAndSwap(key, old, new)
	if ok && err == nil {
		g.swaps = append(g.swaps, [2]string{string(old), string(new)})
	}
	return ok, err
}

func (g *genRecorder) history() [][2]string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([][2]string(nil), g.swaps...)
}

func (g *genRecorder) Set(key string, value []byte) error { return g.inner.Set(key, value) }
func (g *genRecorder) Get(key string) ([]byte, error)     { return g.inner.Get(key) }
func (g *genRecorder) Add(key string, delta int64) (int64, error) {
	return g.inner.Add(key, delta)
}
func (g *genRecorder) Wait(keys ...string) error { return g.inner.Wait(keys...) }
func (g *genRecorder) Delete(key string) error   { return g.inner.Delete(key) }
func (g *genRecorder) Watch(key string, prev []byte) ([]byte, error) {
	return g.inner.Watch(key, prev)
}

// GetCancel keeps the recorder cancellation-transparent so mesh builds
// through it stay abortable.
func (g *genRecorder) GetCancel(key string, cancel <-chan struct{}) ([]byte, error) {
	return store.GetCancel(g.inner, key, cancel)
}
