package chaos

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
)

// EventKind names one fault in a schedule's vocabulary.
type EventKind string

// The event vocabulary. Every kind fires at the target worker's entry
// into Event.Step (of the era the event belongs to — see Schedule).
const (
	// EvKill hard-crashes the target before it executes the step.
	EvKill EventKind = "kill"
	// EvKillMidStep runs the forward pass, then crashes — survivors
	// are left blocked inside the step's collectives.
	EvKillMidStep EventKind = "kill-mid-step"
	// EvHang stops the target's heartbeat and parks it, leaving lease
	// expiry as the only detection path.
	EvHang EventKind = "hang"
	// EvPartition cuts the target off from the rendezvous store (its
	// peers keep using it) and parks it.
	EvPartition EventKind = "partition"
	// EvLeave departs cleanly: the target completes the step, proposes
	// the next generation, and exits nil.
	EvLeave EventKind = "leave"
	// EvJoin admits a new worker (a fresh ordinal) at the step.
	EvJoin EventKind = "join"
	// EvKillAll crashes every active worker at the step, then respawns
	// them with Resume — the cold-restart path only checkpoints survive.
	EvKillAll EventKind = "kill-all"
	// EvDiskFault makes the target's checkpoint disk fail from the
	// step on: its next save errors and the worker dies with it.
	EvDiskFault EventKind = "disk-fault"
	// EvSlowDisk delays each of the target's checkpoint writes by
	// SlowMs, stretching saves across membership events.
	EvSlowDisk EventKind = "slow-disk"
	// EvStraggle slows the target by SlowMs per step for Count steps —
	// the straggler detector must flag a viable one.
	EvStraggle EventKind = "straggle"
)

// Event is one scheduled fault.
type Event struct {
	// Kind selects the fault.
	Kind EventKind `json:"kind"`
	// Worker is the target's ordinal; worker IDs are "w<ordinal>".
	// Joins introduce the next unused ordinal (Normalize rewrites it).
	Worker int `json:"worker"`
	// Step is the global training step the event fires at.
	Step int64 `json:"step"`
	// Count is how many consecutive steps a straggle slows.
	Count int64 `json:"count,omitempty"`
	// SlowMs is the injected delay: per step for straggle, per
	// checkpoint write for slow-disk.
	SlowMs int `json:"slow_ms,omitempty"`
}

// Schedule is a complete, replayable failure scenario. Events fire
// deterministically at step entries; a kill-all splits the run into two
// eras — era 0 covers steps [0, kill-all step), era 1 re-executes from
// the restored checkpoint step to the end — and an event belongs to
// era 1 exactly when its Step is at or past the kill-all step.
type Schedule struct {
	// Seed records how the schedule was generated; informational.
	Seed int64 `json:"seed"`
	// World is the initial world size.
	World int `json:"world"`
	// Steps is the number of training steps the run must complete.
	Steps int64 `json:"steps"`
	// Codec selects the gradient codec: "" for exact allreduce, "1bit"
	// for wire-level 1-bit compression with error feedback (batches are
	// then rank-independent so residuals stay comparable across ranks).
	Codec string `json:"codec,omitempty"`
	// Strategy selects the data-parallel engine: "" for DDP, "zero2" or
	// "zero3" for sharded data parallelism (internal/fsdp). A sharded
	// world recovers every membership change by rolling back to the
	// newest committed checkpoint (a lost rank's shards are gone), so
	// sharded schedules force CkptEvery to 1 — membership events land on
	// step boundaries, each boundary is a committed save point, and the
	// rollback restores exactly the live state: no step ever re-executes
	// and the plan's once-per-step world trajectory stays valid. For the
	// same reason the codec and the disk events are dropped: stale
	// error-feedback residuals and saves that die or straddle a
	// membership change would legally roll survivors behind steps they
	// already completed.
	Strategy string `json:"strategy,omitempty"`
	// CkptEvery saves a checkpoint every N completed steps (0: none).
	CkptEvery int64 `json:"ckpt_every,omitempty"`
	// Events is the fault list, ordered by Step.
	Events []Event `json:"events,omitempty"`
}

// Bounds keeping schedules executable in a test-sized budget.
const (
	minWorldBound = 2
	maxWorldBound = 4
	minStepsBound = 2
	maxStepsBound = 12
	maxEvents     = 6
	// maxExpensive caps events whose detection needs a full lease
	// expiry (hang, partition, disk-fault) — each costs ~1s wall time.
	maxExpensive = 2
	minStraggleN = 1
	maxStraggleN = 6
	minSlowMs    = 1
	maxSlowMs    = 60
	maxDiskMs    = 300
)

// exitKind is the exit a worker instance is expected to produce.
type exitKind int

const (
	exitClean exitKind = iota // nil error, ran to the end (or left)
	exitKilled
	exitError // non-nil, non-ErrKilled (disk-fault victims)
)

// workerPlan is one engine spawn: an (ordinal, era) instance with its
// predicted fate.
type workerPlan struct {
	ord      int
	era      int
	joinStep int64 // event step admitting it; -1 for initial/respawned
	resume   bool  // cold-start restore from the checkpoint dir
	exit     exitKind
	// exitStep is the completed-step count the instance must hold on a
	// clean exit (-1: not checked).
	exitStep int64
	// parked instances (hang/partition victims) block until the engine
	// releases them at the end of the run.
	parked bool
}

// straggleSpan is a straggle event with its viability verdict: only a
// span long and stable enough that the detector MUST flag it turns
// into a positive assertion.
type straggleSpan struct {
	ord    int
	era    int
	start  int64
	count  int64
	slowMs int
	viable bool
}

// plan is the trajectory predicted from a schedule: the world size of
// every step in every era, the respawn set, and each worker instance's
// expected fate. The invariants compare the realized run against it.
type plan struct {
	s        Schedule
	killAll  *Event // nil: single era
	end0     int64  // era 0 covers steps [0, end0)
	world0   []int  // world per step, era 0 (len end0)
	world1   []int  // world per step, era 1 (len Steps; nil: no era 1)
	respawn  []int  // ordinals respawned after the kill-all
	workers  []workerPlan
	joins    []joinPlan
	straggle []straggleSpan
	maxWorld int // peak concurrent world across the run
}

type joinPlan struct {
	ord  int
	era  int
	step int64
}

// eraOf places an event in its era (see Schedule).
func (p *plan) eraOf(ev Event) int {
	if p.killAll != nil && ev.Kind != EvKillAll && ev.Step >= p.killAll.Step {
		return 1
	}
	return 0
}

// expectedWorld is the world size step must complete at in era.
func (p *plan) expectedWorld(era int, step int64) int {
	if era == 0 {
		if step < int64(len(p.world0)) {
			return p.world0[step]
		}
		return 0
	}
	if step < int64(len(p.world1)) {
		return p.world1[step]
	}
	return 0
}

// clampI bounds v into [lo, hi].
func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Normalize clamps a schedule into the executable envelope and drops
// events that cannot fire (dead or unknown targets, steps out of
// range, joins beyond the world cap, disk faults with no save to hit,
// second kill-alls, expensive events beyond the budget). The result
// always passes Validate. Generate and FromBytes both normalize, so
// every schedule the fuzzer or the generator produces is runnable.
func Normalize(s Schedule) Schedule {
	// Clamping inside walk can move an event's step after the sort (a
	// kill-all at step 0 becomes step 1, a join likewise), leaving the
	// kept list out of step order; walking again from the re-sorted
	// form converges — values are in bounds after one pass and event
	// drops are monotone, so a handful of passes reaches a fixpoint.
	out, _, _ := walk(s, true)
	for i := 0; i < 2+maxEvents; i++ {
		next, _, _ := walk(out, true)
		if reflect.DeepEqual(next, out) {
			break
		}
		out = next
	}
	return out
}

// Validate checks that a schedule is already in normal form — the
// contract for corpus entries and shrunk reproducers, which must
// re-execute verbatim rather than be silently repaired.
func Validate(s Schedule) error {
	n, _, err := walk(s, true)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(n, s) {
		return fmt.Errorf("chaos: schedule not in normal form (Normalize changes it)")
	}
	return nil
}

// analyze predicts the run: it walks the (normal-form) schedule and
// returns the plan the engine executes against.
func analyze(s Schedule) (*plan, error) {
	_, p, err := walk(s, false)
	return p, err
}

// walk simulates a schedule's effect on the membership timeline. In
// lenient mode invalid events are dropped and fields clamped; in
// strict mode the schedule is assumed normal. It returns the (possibly
// repaired) schedule and its plan.
func walk(s Schedule, lenient bool) (Schedule, *plan, error) {
	if lenient {
		s.World = clampI(s.World, minWorldBound, maxWorldBound)
		s.Steps = clamp64(s.Steps, minStepsBound, maxStepsBound)
		if s.Codec != "" && s.Codec != "1bit" {
			s.Codec = "1bit"
		}
		s.CkptEvery = clamp64(s.CkptEvery, 0, s.Steps)
		if s.Strategy != "" && s.Strategy != "zero2" && s.Strategy != "zero3" {
			s.Strategy = "zero3"
		}
		if s.Strategy != "" {
			s.Codec = ""
			s.CkptEvery = 1
		}
	} else {
		if s.World < minWorldBound || s.World > maxWorldBound ||
			s.Steps < minStepsBound || s.Steps > maxStepsBound ||
			(s.Codec != "" && s.Codec != "1bit") ||
			(s.Strategy != "" && s.Strategy != "zero2" && s.Strategy != "zero3") ||
			(s.Strategy != "" && (s.Codec != "" || s.CkptEvery != 1)) ||
			s.CkptEvery < 0 || s.CkptEvery > s.Steps {
			return s, nil, fmt.Errorf("chaos: schedule outside executable bounds: %+v", s)
		}
	}

	events := append([]Event(nil), s.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Step < events[j].Step })

	p := &plan{s: s, maxWorld: s.World}
	// First pass: locate the kill-all (at most one, step >= 1).
	var kept []Event
	for _, ev := range events {
		if ev.Kind != EvKillAll {
			kept = append(kept, ev)
			continue
		}
		ev.Worker, ev.Count, ev.SlowMs = 0, 0, 0
		ev.Step = clamp64(ev.Step, 1, s.Steps-1)
		if p.killAll != nil {
			if !lenient {
				return s, nil, fmt.Errorf("chaos: more than one kill-all")
			}
			continue
		}
		ka := ev
		p.killAll = &ka
		kept = append(kept, ev)
	}
	events = kept
	p.end0 = s.Steps
	if p.killAll != nil {
		p.end0 = p.killAll.Step
	}

	// Second pass: validate each event against the simulated active
	// set of its era, clamping fields and rewriting join ordinals.
	active := map[int]bool{}
	for i := 0; i < s.World; i++ {
		active[i] = true
	}
	nextOrd := s.World
	expensive := 0
	kept = kept[:0]
	// departAt collects (era, step) → ordinals whose removal takes
	// effect before that step completes (kills, hangs, partitions, and
	// disk-fault victims at their fatal save point).
	departBefore := map[[2]int64][]int{}
	departAfter := map[[2]int64][]int{}
	arrive := map[[2]int64][]int{}
	era := 0
	eraEnd := func(era int) int64 {
		if era == 0 {
			return p.end0
		}
		return s.Steps
	}
	respawnTaken := false
	takeRespawn := func() {
		if respawnTaken {
			return
		}
		respawnTaken = true
		for o := range active {
			p.respawn = append(p.respawn, o)
		}
		sort.Ints(p.respawn)
	}
	for _, ev := range events {
		if p.killAll != nil && ev.Kind != EvKillAll && ev.Step >= p.killAll.Step && era == 0 {
			// Crossing into era 1: everyone active respawns.
			takeRespawn()
			era = 1
		}
		bad := func(format string, args ...interface{}) error {
			if lenient {
				return nil
			}
			return fmt.Errorf("chaos: event %+v: "+format, append([]interface{}{ev}, args...)...)
		}
		ok := true
		switch ev.Kind {
		case EvKillAll:
			takeRespawn()
			era = 1
		case EvKill, EvKillMidStep, EvHang, EvPartition:
			if lenient {
				ev.Count, ev.SlowMs = 0, 0
				ev.Step = clamp64(ev.Step, 0, eraEnd(era)-1)
			} else if ev.Count != 0 || ev.SlowMs != 0 || ev.Step < 0 || ev.Step >= eraEnd(era) {
				return s, nil, bad("fields out of range for era %d", era)
			}
			if !active[ev.Worker] || len(active) <= 1 {
				if !lenient {
					return s, nil, bad("target not an active non-final worker")
				}
				ok = false
				break
			}
			if ev.Kind == EvHang || ev.Kind == EvPartition {
				if expensive >= maxExpensive {
					if !lenient {
						return s, nil, bad("over the expensive-event budget")
					}
					ok = false
					break
				}
				expensive++
			}
			delete(active, ev.Worker)
			key := [2]int64{int64(era), ev.Step}
			departBefore[key] = append(departBefore[key], ev.Worker)
			parked := ev.Kind == EvHang || ev.Kind == EvPartition
			p.setWorkerExit(ev.Worker, era, exitKilled, -1, parked)
		case EvLeave:
			if lenient {
				ev.Count, ev.SlowMs = 0, 0
				ev.Step = clamp64(ev.Step, 0, eraEnd(era)-1)
			} else if ev.Count != 0 || ev.SlowMs != 0 || ev.Step < 0 || ev.Step >= eraEnd(era) {
				return s, nil, bad("fields out of range for era %d", era)
			}
			if !active[ev.Worker] || len(active) <= 1 {
				if !lenient {
					return s, nil, bad("target not an active non-final worker")
				}
				ok = false
				break
			}
			delete(active, ev.Worker)
			key := [2]int64{int64(era), ev.Step}
			departAfter[key] = append(departAfter[key], ev.Worker)
			p.setWorkerExit(ev.Worker, era, exitClean, ev.Step+1, false)
		case EvJoin:
			if lenient {
				ev.Count, ev.SlowMs = 0, 0
				ev.Step = clamp64(ev.Step, 1, eraEnd(era)-1)
				ev.Worker = nextOrd
			} else if ev.Count != 0 || ev.SlowMs != 0 || ev.Step < 1 || ev.Step >= eraEnd(era) || ev.Worker != nextOrd {
				return s, nil, bad("fields out of range for era %d (join ordinals are assigned in order)", era)
			}
			if len(active) >= maxWorldBound {
				if !lenient {
					return s, nil, bad("join would exceed the world cap")
				}
				ok = false
				break
			}
			active[nextOrd] = true
			key := [2]int64{int64(era), ev.Step}
			arrive[key] = append(arrive[key], nextOrd)
			p.joins = append(p.joins, joinPlan{ord: nextOrd, era: era, step: ev.Step})
			p.workers = append(p.workers, workerPlan{
				ord: nextOrd, era: era, joinStep: ev.Step,
				exit: exitClean, exitStep: s.Steps,
			})
			nextOrd++
		case EvDiskFault:
			if lenient {
				ev.Count, ev.SlowMs = 0, 0
				ev.Step = clamp64(ev.Step, 0, eraEnd(era)-1)
			} else if ev.Count != 0 || ev.SlowMs != 0 || ev.Step < 0 || ev.Step >= eraEnd(era) {
				return s, nil, bad("fields out of range for era %d", era)
			}
			if s.CkptEvery <= 0 || s.Strategy != "" || !active[ev.Worker] || len(active) <= 1 || expensive >= maxExpensive {
				if !lenient {
					return s, nil, bad("needs checkpointing (non-sharded), an active non-final target, and expensive budget")
				}
				ok = false
				break
			}
			// The victim dies at its first save after arming: the
			// smallest multiple of CkptEvery at or above Step+1.
			fatal := ((ev.Step + s.CkptEvery) / s.CkptEvery) * s.CkptEvery
			if fatal > eraEnd(era) {
				if !lenient {
					return s, nil, bad("no save point before the era ends")
				}
				ok = false
				break
			}
			expensive++
			delete(active, ev.Worker)
			if fatal < eraEnd(era) {
				key := [2]int64{int64(era), fatal}
				departBefore[key] = append(departBefore[key], ev.Worker)
			}
			p.setWorkerExit(ev.Worker, era, exitError, -1, false)
		case EvSlowDisk:
			if lenient {
				ev.Count = 0
				ev.SlowMs = clampI(ev.SlowMs, minSlowMs, maxDiskMs)
				ev.Step = clamp64(ev.Step, 0, eraEnd(era)-1)
			} else if ev.Count != 0 || ev.SlowMs < minSlowMs || ev.SlowMs > maxDiskMs || ev.Step < 0 || ev.Step >= eraEnd(era) {
				return s, nil, bad("fields out of range for era %d", era)
			}
			if s.CkptEvery <= 0 || s.Strategy != "" || !active[ev.Worker] {
				if !lenient {
					return s, nil, bad("needs checkpointing (non-sharded) and an active target")
				}
				ok = false
			}
		case EvStraggle:
			if lenient {
				ev.Count = clamp64(ev.Count, minStraggleN, maxStraggleN)
				ev.SlowMs = clampI(ev.SlowMs, minSlowMs, maxSlowMs)
				ev.Step = clamp64(ev.Step, 0, eraEnd(era)-1)
			} else if ev.Count < minStraggleN || ev.Count > maxStraggleN || ev.SlowMs < minSlowMs || ev.SlowMs > maxSlowMs || ev.Step < 0 || ev.Step >= eraEnd(era) {
				return s, nil, bad("fields out of range for era %d", era)
			}
			if !active[ev.Worker] {
				if !lenient {
					return s, nil, bad("target not active")
				}
				ok = false
				break
			}
			p.straggle = append(p.straggle, straggleSpan{
				ord: ev.Worker, era: era, start: ev.Step, count: ev.Count, slowMs: ev.SlowMs,
			})
		default:
			if !lenient {
				return s, nil, bad("unknown kind")
			}
			ok = false
		}
		if ok {
			kept = append(kept, ev)
			if len(kept) >= maxEvents && lenient {
				break
			}
		}
	}
	if !lenient && len(kept) > maxEvents {
		return s, nil, fmt.Errorf("chaos: more than %d events", maxEvents)
	}
	if len(kept) == 0 {
		kept = nil // canonical empty form, so Normalize is idempotent
	}
	s.Events = kept
	if p.killAll != nil {
		takeRespawn()
	}

	// Initial-world instances (era 0).
	for o := 0; o < s.World; o++ {
		if p.hasWorker(o, 0) {
			continue
		}
		exit, exitStep := exitClean, s.Steps
		p.workers = append(p.workers, workerPlan{
			ord: o, era: 0, joinStep: -1, resume: s.CkptEvery > 0,
			exit: exit, exitStep: exitStep,
		})
	}
	// A kill-all converts every era-0 instance still running at its
	// step into a killed one, and spawns the era-1 respawns.
	if p.killAll != nil {
		for i := range p.workers {
			w := &p.workers[i]
			if w.era == 0 && w.exit == exitClean && w.exitStep == s.Steps {
				w.exit = exitKilled
				w.exitStep = -1
			}
		}
		for _, o := range p.respawn {
			if p.hasWorker(o, 1) {
				continue
			}
			p.workers = append(p.workers, workerPlan{
				ord: o, era: 1, joinStep: -1, resume: true,
				exit: exitClean, exitStep: s.Steps,
			})
		}
	}

	// Timeline pass: world per step per era.
	p.world0 = worldTimeline(0, p.end0, initialSet(s.World), arrive, departBefore, departAfter)
	if p.killAll != nil {
		rs := map[int]bool{}
		for _, o := range p.respawn {
			rs[o] = true
		}
		p.world1 = worldTimeline(1, s.Steps, rs, arrive, departBefore, departAfter)
	}
	for _, w := range p.world0 {
		if w > p.maxWorld {
			p.maxWorld = w
		}
	}
	for _, w := range p.world1 {
		if w > p.maxWorld {
			p.maxWorld = w
		}
	}

	// Straggle viability: the detector is only REQUIRED to flag a span
	// that is long enough, fully executed, and free of membership churn
	// (churn pauses stepping but must not unflag — it just voids the
	// obligation, keeping the positive assertion race-free).
	for i := range p.straggle {
		sp := &p.straggle[i]
		// Under ZeRO-3 the forward itself gathers parameters, so a
		// straggler's sleep stalls every peer inside the same collective
		// and the world's self-reported compute median absorbs the delay
		// — the fault still injects, but the flag obligation is voided.
		sp.viable = sp.count >= 4 && sp.start+sp.count <= eraEnd(sp.era) && s.Strategy != "zero3"
		wt := p.world0
		if sp.era == 1 {
			wt = p.world1
		}
		for st := sp.start; sp.viable && st < sp.start+sp.count; st++ {
			// At world 2 the world median averages victim and peer, so
			// own > Factor×world is arithmetically unreachable; only a
			// world of 3+ (median = a healthy peer) can be obligated.
			if wt[st] < 3 {
				sp.viable = false
			}
			if st > sp.start && wt[st] != wt[sp.start] {
				sp.viable = false
			}
		}
		// The victim must survive the span (it may die later).
		if sp.viable {
			for _, w := range p.workers {
				if w.ord == sp.ord && w.era == sp.era && w.exit != exitClean {
					sp.viable = false
				}
			}
		}
	}

	p.s = s
	return s, p, nil
}

func initialSet(n int) map[int]bool {
	m := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		m[i] = true
	}
	return m
}

// worldTimeline computes the completed-step world sizes of one era.
func worldTimeline(era int, end int64, activeStart map[int]bool, arrive, departBefore, departAfter map[[2]int64][]int) []int {
	active := make(map[int]bool, len(activeStart))
	for o := range activeStart {
		active[o] = true
	}
	out := make([]int, end)
	for s := int64(0); s < end; s++ {
		key := [2]int64{int64(era), s}
		for _, o := range arrive[key] {
			active[o] = true
		}
		for _, o := range departBefore[key] {
			delete(active, o)
		}
		out[s] = len(active)
		for _, o := range departAfter[key] {
			delete(active, o)
		}
	}
	return out
}

func (p *plan) hasWorker(ord, era int) bool {
	for _, w := range p.workers {
		if w.ord == ord && w.era == era {
			return true
		}
	}
	return false
}

// setWorkerExit records (or creates) the fate of an (ordinal, era)
// instance already introduced by the initial world or a join.
func (p *plan) setWorkerExit(ord, era int, exit exitKind, exitStep int64, parked bool) {
	for i := range p.workers {
		if p.workers[i].ord == ord && p.workers[i].era == era {
			p.workers[i].exit = exit
			p.workers[i].exitStep = exitStep
			p.workers[i].parked = parked
			return
		}
	}
	p.workers = append(p.workers, workerPlan{
		ord: ord, era: era, joinStep: -1, resume: era == 1 || p.s.CkptEvery > 0,
		exit: exit, exitStep: exitStep, parked: parked,
	})
}

// Encode serializes a schedule as indented JSON — the reproducer
// format Replay and the corpus tests consume.
func (s Schedule) Encode() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// A Schedule is plain data; marshaling cannot fail.
		panic(fmt.Sprintf("chaos: encoding schedule: %v", err))
	}
	return append(b, '\n')
}

// Decode parses a schedule from its JSON reproducer form.
func Decode(data []byte) (Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return Schedule{}, fmt.Errorf("chaos: decoding schedule: %w", err)
	}
	return s, nil
}
