package chaos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/store"
)

// TestShrinkMutantsAreSmallerAndNormal: every proposed mutant must be
// runnable (normal form) and must not grow the schedule — the two
// properties the greedy shrinker relies on for convergence.
func TestShrinkMutantsAreSmallerAndNormal(t *testing.T) {
	c := Normalize(Schedule{World: 3, Steps: 10, Codec: "1bit", CkptEvery: 2, Events: []Event{
		{Kind: EvStraggle, Worker: 1, Step: 2, Count: 5, SlowMs: 40},
		{Kind: EvSlowDisk, Worker: 0, Step: 3, SlowMs: 80},
		{Kind: EvKillAll, Step: 6},
	}})
	muts := shrinkMutants(c)
	if len(muts) == 0 {
		t.Fatal("no mutants for a fully-loaded schedule")
	}
	for _, m := range muts {
		if err := Validate(m); err != nil {
			t.Fatalf("mutant not normal form: %v\n%s", err, m.Encode())
		}
		if m.Steps > c.Steps || len(m.Events) > len(c.Events) {
			t.Fatalf("mutant grew:\nfrom %sto %s", c.Encode(), m.Encode())
		}
	}
	// The aggressive reductions must be among the proposals.
	var sawNoCodec, sawNoCkpt, sawHalfSteps bool
	for _, m := range muts {
		sawNoCodec = sawNoCodec || m.Codec == ""
		sawNoCkpt = sawNoCkpt || m.CkptEvery == 0
		sawHalfSteps = sawHalfSteps || m.Steps == (c.Steps+minStepsBound)/2
	}
	if !sawNoCodec || !sawNoCkpt || !sawHalfSteps {
		t.Fatalf("missing aggressive mutants (codec %v, ckpt %v, steps %v)",
			sawNoCodec, sawNoCkpt, sawHalfSteps)
	}
}

// TestShrinkPassthrough: a passing schedule comes back unchanged.
func TestShrinkPassthrough(t *testing.T) {
	s := Normalize(Schedule{World: 2, Steps: 2})
	min, rep := Shrink(s, Options{})
	if rep.Failed() {
		t.Fatalf("trivial schedule failed: %s", rep)
	}
	if min.Steps != s.Steps || min.World != s.World {
		t.Fatalf("Shrink changed a passing schedule: %s", min.Encode())
	}
}

// TestFaultHook pins the checkpoint-disk shim's two behaviors and its
// wiring through ckpt.Writer: an armed failure surfaces as a Save
// error before any bytes land, and an armed delay stretches the write.
func TestFaultHook(t *testing.T) {
	f := &faultHook{}
	if err := f.BeforeWrite("shard"); err != nil {
		t.Fatalf("unarmed hook errored: %v", err)
	}
	f.armSlow(30)
	start := time.Now()
	if err := f.BeforeWrite("shard"); err != nil {
		t.Fatalf("slow hook errored: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("slow hook returned after %v, want >= 30ms", d)
	}
	f.armFail()
	err := f.BeforeWrite("shard")
	if err == nil || !strings.Contains(err.Error(), "injected disk fault") {
		t.Fatalf("armed hook error = %v", err)
	}

	// Wiring: a Writer with the armed hook must fail the save.
	m := chModel()
	opt := chOptimizer(m)
	snap, cerr := ckpt.Capture(m, opt, ckpt.Meta{Generation: 1, Step: 2})
	if cerr != nil {
		t.Fatal(cerr)
	}
	st := store.NewInMem(2 * time.Second)
	defer st.Close()
	w := &ckpt.Writer{
		Dir:       t.TempDir(),
		Committer: &ckpt.StoreCommitter{St: st},
		Fault:     f,
	}
	if err := w.Save(snap, 0, 1, nil); err == nil || !strings.Contains(err.Error(), "injected disk fault") {
		t.Fatalf("Save with armed hook = %v, want injected disk fault", err)
	}
	if _, err := ckpt.LatestMeta(w.Dir); err == nil {
		t.Fatal("faulted save still committed a checkpoint")
	}
}

// TestReplayRejectsNonNormal: a reproducer that Normalize would repair
// is refused rather than silently rewritten.
func TestReplayRejectsNonNormal(t *testing.T) {
	s := Schedule{World: 9, Steps: 4} // world out of bounds
	if _, err := Replay(s.Encode()); err == nil {
		t.Fatal("Replay accepted a non-normal-form schedule")
	}
	if _, err := Replay([]byte("{")); err == nil {
		t.Fatal("Replay accepted malformed JSON")
	}
}

// TestRunRejectsBadSchedule: the engine refuses (with a schedule
// violation, not a panic) input that bypassed Normalize.
func TestRunRejectsBadSchedule(t *testing.T) {
	rep := Run(Schedule{World: 99, Steps: -3})
	if !rep.Has(invSchedule) {
		t.Fatalf("report = %s, want a %q violation", rep, invSchedule)
	}
}
