package chaos

import "math/rand"

// kindWeights biases generation toward cheap, composable faults; the
// expensive lease-detected kinds (hang, partition, disk-fault) stay
// rare so a seed set fits a CI budget.
var kindWeights = []struct {
	kind   EventKind
	weight int
}{
	{EvKill, 22},
	{EvKillMidStep, 10},
	{EvLeave, 16},
	{EvJoin, 16},
	{EvKillAll, 10},
	{EvStraggle, 8},
	{EvHang, 6},
	{EvPartition, 5},
	{EvDiskFault, 4},
	{EvSlowDisk, 3},
}

func pickKind(rng *rand.Rand) EventKind {
	total := 0
	for _, kw := range kindWeights {
		total += kw.weight
	}
	n := rng.Intn(total)
	for _, kw := range kindWeights {
		if n < kw.weight {
			return kw.kind
		}
		n -= kw.weight
	}
	return EvKill
}

// Generate draws a schedule from the rng. The same seed always yields
// the same schedule (Generate consumes a fixed draw pattern per event),
// so `Generate(rand.New(rand.NewSource(seed)))` is a replayable run
// identity. The result is normalized: invalid draws are repaired or
// dropped, never returned.
func Generate(rng *rand.Rand, seed int64) Schedule {
	s := Schedule{
		Seed:  seed,
		World: minWorldBound + rng.Intn(maxWorldBound-minWorldBound), // 2..3
		Steps: 6 + rng.Int63n(5),                                     // 6..10
	}
	if rng.Intn(2) == 0 {
		s.Codec = "1bit"
	}
	switch rng.Intn(3) {
	case 1:
		s.CkptEvery = 2
	case 2:
		s.CkptEvery = 3
	}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		ev := Event{
			Kind:   pickKind(rng),
			Worker: rng.Intn(s.World + 1), // may name a joiner's ordinal; Normalize repairs
			Step:   rng.Int63n(s.Steps),
		}
		if ev.Kind == EvStraggle {
			ev.Count = 4 + rng.Int63n(3)
			ev.SlowMs = 20 + rng.Intn(30)
		}
		if ev.Kind == EvSlowDisk {
			ev.SlowMs = 10 + rng.Intn(100)
		}
		s.Events = append(s.Events, ev)
	}
	// Sharded runs: drawn LAST so earlier seeds keep their schedules
	// (the smoke/canary seed sets are fixtures), and only for non-codec
	// draws — normal form forbids codec+strategy, and repairing here
	// would silently rewrite half the codec population.
	if s.Codec == "" && rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			s.Strategy = "zero2"
		} else {
			s.Strategy = "zero3"
		}
	}
	return Normalize(s)
}

// FromBytes decodes arbitrary fuzzer bytes into a runnable schedule
// using a compact positional encoding (consumed bytes, in order:
// world, steps, codec-or-strategy, checkpoint cadence, event count,
// then 5 bytes
// per event: kind, worker, step, count, slow). Missing bytes read as
// zero; the result is normalized, so every byte string maps to a
// valid — if often boring — schedule.
func FromBytes(data []byte) Schedule {
	at := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	s := Schedule{
		World: minWorldBound + int(at(0))%(maxWorldBound-minWorldBound),
		Steps: 4 + int64(at(1))%5, // 4..8: keep fuzz execs fast
	}
	switch at(2) % 4 {
	case 1:
		s.Codec = "1bit"
	case 2:
		s.Strategy = "zero2"
	case 3:
		s.Strategy = "zero3"
	}
	switch at(3) % 3 {
	case 1:
		s.CkptEvery = 2
	case 2:
		s.CkptEvery = 3
	}
	kinds := []EventKind{EvKill, EvKillMidStep, EvLeave, EvJoin, EvKillAll,
		EvStraggle, EvHang, EvPartition, EvDiskFault, EvSlowDisk}
	n := int(at(4)) % 4 // 0..3 events
	for i := 0; i < n; i++ {
		base := 5 + i*5
		ev := Event{
			Kind:   kinds[int(at(base))%len(kinds)],
			Worker: int(at(base+1)) % (maxWorldBound + 1),
			Step:   int64(at(base+2)) % s.Steps,
		}
		if ev.Kind == EvStraggle {
			ev.Count = int64(at(base+3))%maxStraggleN + 1
			ev.SlowMs = int(at(base+4))%maxSlowMs + 1
		}
		if ev.Kind == EvSlowDisk {
			ev.SlowMs = int(at(base+4))%maxDiskMs + 1
		}
		s.Events = append(s.Events, ev)
	}
	return Normalize(s)
}
