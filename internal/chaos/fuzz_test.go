package chaos

import "testing"

// FuzzElasticSchedule feeds mutated byte encodings through FromBytes
// into the full engine: every byte string decodes to a runnable
// normal-form schedule (see TestFromBytesNormalForm), runs against a
// real in-process elastic cluster, and must satisfy every invariant.
// A crasher's minimized input IS a failure schedule — re-encode it
// with FromBytes(...).Encode() for a human-readable reproducer.
func FuzzElasticSchedule(f *testing.F) {
	// Seeds cover the encoding's dimensions: trivial runs, each fault
	// family, the codec, sharding strategies, checkpointing, and
	// multi-event composition. Positional layout: world, steps,
	// codec-or-strategy, ckpt, nEvents, then 5 bytes (kind, worker,
	// step, count, slow) per event.
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 1, 0, 0, 2})                 // kill
	f.Add([]byte{1, 2, 1, 1, 1, 2, 1, 3})                 // codec + leave
	f.Add([]byte{0, 2, 0, 1, 1, 4, 0, 3})                 // ckpt + kill-all
	f.Add([]byte{1, 4, 0, 0, 1, 5, 1, 2, 4, 29})          // straggle
	f.Add([]byte{0, 2, 1, 2, 2, 9, 0, 1, 0, 39, 4, 0, 4}) // slow-disk then kill-all
	f.Add([]byte{1, 2, 3, 0, 1, 1, 2, 2})                 // zero3 + kill-mid-step (gather kill)
	f.Add([]byte{0, 3, 2, 0, 2, 0, 1, 2, 0, 0, 3, 2, 4})  // zero2 kill then join
	f.Fuzz(func(t *testing.T, data []byte) {
		s := FromBytes(data)
		rep := Run(s)
		if rep.Failed() {
			t.Fatalf("%s\nschedule: %s", rep, s.Encode())
		}
	})
}
