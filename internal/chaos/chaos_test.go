package chaos

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil/leakcheck"
)

func TestMain(m *testing.M) {
	// Engine teardown closes the shared store, which unwinds agent
	// monitor loops asynchronously; give stragglers a settle window.
	leakcheck.Main(m, leakcheck.Timeout(10*time.Second))
}

// writeArtifact drops a shrunk reproducer where CI can pick it up as a
// build artifact ($CHAOS_ARTIFACT_DIR; no-op when unset, i.e. locally).
func writeArtifact(t *testing.T, name string, s Schedule) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos: artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, name+".json")
	if err := os.WriteFile(path, s.Encode(), 0o644); err != nil {
		t.Logf("chaos: writing artifact: %v", err)
		return
	}
	t.Logf("chaos: shrunk reproducer written to %s", path)
}

// failSchedule reports a failing schedule, shrinking it first so the
// error (and the CI artifact) is the minimal reproducer.
func failSchedule(t *testing.T, name string, s Schedule, rep *Report, opts Options) {
	t.Helper()
	min, minRep := Shrink(s, opts)
	writeArtifact(t, name, min)
	t.Errorf("%s\nschedule: %sshrunk to: %s%s", rep, s.Encode(), min.Encode(), minRep)
}

// TestEventKinds runs one handcrafted schedule per fault kind (plus
// codec variants) through the full engine and expects a clean report.
func TestEventKinds(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
	}{
		{"kill", Schedule{World: 3, Steps: 5, Events: []Event{{Kind: EvKill, Worker: 0, Step: 2}}}},
		{"kill-mid-step", Schedule{World: 3, Steps: 5, Events: []Event{{Kind: EvKillMidStep, Worker: 2, Step: 1}}}},
		{"hang", Schedule{World: 3, Steps: 5, Events: []Event{{Kind: EvHang, Worker: 1, Step: 2}}}},
		{"partition", Schedule{World: 3, Steps: 5, Events: []Event{{Kind: EvPartition, Worker: 1, Step: 2}}}},
		{"leave", Schedule{World: 3, Steps: 5, Events: []Event{{Kind: EvLeave, Worker: 0, Step: 2}}}},
		{"join", Schedule{World: 2, Steps: 6, Events: []Event{{Kind: EvJoin, Worker: 2, Step: 3}}}},
		{"kill-all", Schedule{World: 2, Steps: 6, CkptEvery: 2, Events: []Event{{Kind: EvKillAll, Step: 4}}}},
		{"kill-all-no-ckpt", Schedule{World: 2, Steps: 5, Events: []Event{{Kind: EvKillAll, Step: 3}}}},
		{"disk-fault", Schedule{World: 3, Steps: 6, CkptEvery: 2, Events: []Event{{Kind: EvDiskFault, Worker: 2, Step: 2}}}},
		{"slow-disk", Schedule{World: 2, Steps: 6, CkptEvery: 2, Events: []Event{{Kind: EvSlowDisk, Worker: 0, Step: 1, SlowMs: 40}}}},
		{"straggle", Schedule{World: 3, Steps: 8, Events: []Event{{Kind: EvStraggle, Worker: 1, Step: 2, Count: 5, SlowMs: 30}}}},
		{"codec-leave", Schedule{World: 3, Steps: 6, Codec: "1bit", Events: []Event{{Kind: EvLeave, Worker: 1, Step: 3}}}},
		{"codec-kill-all", Schedule{World: 2, Steps: 7, Codec: "1bit", CkptEvery: 3, Events: []Event{{Kind: EvKillAll, Step: 4}}}},
		// Sharded (ZeRO) runs: Normalize forces CkptEvery to 1, so every
		// recovery is a rollback onto the live state. kill-mid-step under
		// ZeRO-3 dies inside the forward gather phase (the engine arms a
		// TestingOnGather hook), the hardest window — a rank vanishing
		// while peers wait on its parameter shards.
		{"zero2-kill", Schedule{World: 3, Steps: 5, Strategy: "zero2", Events: []Event{{Kind: EvKill, Worker: 0, Step: 2}}}},
		{"zero2-leave", Schedule{World: 3, Steps: 5, Strategy: "zero2", Events: []Event{{Kind: EvLeave, Worker: 2, Step: 2}}}},
		{"zero3-gather-kill", Schedule{World: 3, Steps: 5, Strategy: "zero3", Events: []Event{{Kind: EvKillMidStep, Worker: 2, Step: 1}}}},
		{"zero3-join", Schedule{World: 2, Steps: 6, Strategy: "zero3", Events: []Event{{Kind: EvJoin, Worker: 2, Step: 3}}}},
		{"zero3-kill-all", Schedule{World: 2, Steps: 6, Strategy: "zero3", Events: []Event{{Kind: EvKillAll, Step: 4}}}},
		{"zero3-churn", Schedule{World: 3, Steps: 6, Strategy: "zero3", Events: []Event{
			{Kind: EvKill, Worker: 1, Step: 2}, {Kind: EvJoin, Worker: 3, Step: 4}}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s := Normalize(tc.s)
			if rep := Run(s); rep.Failed() {
				failSchedule(t, "event-"+tc.name, s, rep, Options{})
			}
		})
	}
}

// smokeSeeds is the CI seed set: fixed, so a regression is a
// deterministic failure, not a flake. It deliberately includes seeds
// whose schedules combine the codec with membership churn — the shape
// the planted-bug canary (TestPlantedBugCanary) needs to bite on —
// plus sharded draws (seed 8 is a ZeRO-2 run, 23 and 30 are ZeRO-3
// runs with churn).
var smokeSeeds = []int64{1, 2, 3, 5, 6, 8, 12, 16, 23, 30}

// TestChaosSmokeSeedSet runs every generated schedule in the CI seed
// set and expects clean reports; failures are shrunk and exported.
func TestChaosSmokeSeedSet(t *testing.T) {
	for _, seed := range smokeSeeds {
		seed := seed
		t.Run("seed-"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			t.Parallel()
			s := Generate(rand.New(rand.NewSource(seed)), seed)
			if rep := Run(s); rep.Failed() {
				failSchedule(t, "seed-"+strconv.FormatInt(seed, 10), s, rep, Options{})
			}
		})
	}
}

// TestPlantedBugCanary proves the harness can actually catch a real
// historical defect: with ddp's test-only residual-reset flag armed
// (the bug PR 5 fixed), some schedule in the CI seed set must produce
// a bitwise violation, the violation must shrink, and the shrunk JSON
// reproducer must replay to the same invariant from its bytes alone.
func TestPlantedBugCanary(t *testing.T) {
	opts := Options{PlantResidualResetBug: true}
	var failing *Schedule
	for _, seed := range smokeSeeds {
		s := Generate(rand.New(rand.NewSource(seed)), seed)
		if rep := RunWithOptions(s, opts); rep.Has(invBitwise) {
			t.Logf("seed %d catches the planted bug", seed)
			failing = &s
			break
		}
	}
	if failing == nil {
		t.Fatalf("no schedule in the CI seed set %v caught the planted residual-reset bug", smokeSeeds)
	}

	min, minRep := Shrink(*failing, opts)
	if !minRep.Has(invBitwise) {
		t.Fatalf("shrinking lost the bitwise violation: %s", minRep)
	}
	if len(min.Events) > len(failing.Events) || min.Steps > failing.Steps {
		t.Fatalf("shrink grew the schedule:\nfrom %sto %s", failing.Encode(), min.Encode())
	}
	t.Logf("shrunk reproducer:\n%s", min.Encode())

	// The reproducer must work from its serialized form alone.
	rep, err := ReplayWithOptions(min.Encode(), opts)
	if err != nil {
		t.Fatalf("replaying shrunk reproducer: %v", err)
	}
	if !rep.Has(invBitwise) {
		t.Fatalf("shrunk reproducer does not replay the violation: %s", rep)
	}

	// And the fixed code must pass it: the violation is the bug's, not
	// the harness's.
	if rep := Run(min); rep.Failed() {
		t.Fatalf("reproducer fails even without the planted bug: %s", rep)
	}
}

// TestCorpusReplay re-executes every committed reproducer verbatim.
// Corpus entries are normal-form schedules that must pass — regression
// reproducers for once-fixed bugs and handcrafted shapes that exercised
// engine edge cases during development.
func TestCorpusReplay(t *testing.T) {
	entries, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty corpus: testdata/corpus/*.json missing")
	}
	for _, path := range entries {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Replay(data)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if rep.Failed() {
				s, _ := Decode(data)
				failSchedule(t, "corpus-"+strings.TrimSuffix(filepath.Base(path), ".json"), s, rep, Options{})
			}
		})
	}
}
