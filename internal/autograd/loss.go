package autograd

import (
	"fmt"

	"repro/internal/tensor"
)

// MSELoss returns mean((pred-target)^2) over all elements, the loss the
// paper's API example uses (nn.MSELoss).
func MSELoss(pred, target *Variable) *Variable {
	pv, tv := pred.Value, target.Value
	if !pv.SameShape(tv) {
		panic(fmt.Sprintf("autograd: MSELoss shapes %v vs %v", pv.Shape(), tv.Shape()))
	}
	n := float32(pv.Size())
	var sum float64
	for i, p := range pv.Data() {
		d := float64(p - tv.Data()[i])
		sum += d * d
	}
	out := tensor.Scalar(float32(sum) / n)
	return newOp("mse", out, func(g *tensor.Tensor) []*tensor.Tensor {
		scale := 2 * g.Item() / n
		gp := tensor.New(pv.Shape()...)
		gt := tensor.New(tv.Shape()...)
		for i := range gp.Data() {
			d := (pv.Data()[i] - tv.Data()[i]) * scale
			gp.Data()[i] = d
			gt.Data()[i] = -d
		}
		return []*tensor.Tensor{gp, gt}
	}, pred, target)
}

// CrossEntropyLoss computes mean negative log-likelihood of integer
// targets under softmax(logits), fused for numerical stability — the
// CrossEntropyLoss the paper's experiments use. logits is [batch, classes].
func CrossEntropyLoss(logits *Variable, targets []int) *Variable {
	lv := logits.Value
	if lv.Dim() != 2 {
		panic(fmt.Sprintf("autograd: CrossEntropyLoss on shape %v", lv.Shape()))
	}
	batch, classes := lv.Dims(0), lv.Dims(1)
	if len(targets) != batch {
		panic(fmt.Sprintf("autograd: %d targets for batch %d", len(targets), batch))
	}
	logp := tensor.LogSoftmaxRows(lv)
	var sum float64
	for i, t := range targets {
		if t < 0 || t >= classes {
			panic(fmt.Sprintf("autograd: target %d out of range [0,%d)", t, classes))
		}
		sum -= float64(logp.At(i, t))
	}
	out := tensor.Scalar(float32(sum) / float32(batch))
	sm := tensor.SoftmaxRows(lv)
	return newOp("crossEntropy", out, func(g *tensor.Tensor) []*tensor.Tensor {
		scale := g.Item() / float32(batch)
		gl := tensor.New(batch, classes)
		for i := 0; i < batch; i++ {
			for j := 0; j < classes; j++ {
				d := sm.At(i, j)
				if j == targets[i] {
					d--
				}
				gl.Set(d*scale, i, j)
			}
		}
		return []*tensor.Tensor{gl}
	}, logits)
}

// SoftmaxRows applies a row-wise softmax as a differentiable op (used by
// attention). a is [rows, cols].
func SoftmaxRows(a *Variable) *Variable {
	out := tensor.SoftmaxRows(a.Value)
	rows, cols := out.Dims(0), out.Dims(1)
	return newOp("softmax", out, func(g *tensor.Tensor) []*tensor.Tensor {
		gin := tensor.New(rows, cols)
		for i := 0; i < rows; i++ {
			srow := out.Data()[i*cols : (i+1)*cols]
			grow := g.Data()[i*cols : (i+1)*cols]
			var dot float32
			for j := range srow {
				dot += srow[j] * grow[j]
			}
			irow := gin.Data()[i*cols : (i+1)*cols]
			for j := range srow {
				irow[j] = srow[j] * (grow[j] - dot)
			}
		}
		return []*tensor.Tensor{gin}
	}, a)
}
