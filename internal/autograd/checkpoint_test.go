package autograd

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestCheckpointGradsMatchPlainExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w1 := tensor.RandN(rng, 1, 4, 4)
	w2 := tensor.RandN(rng, 1, 4, 3)
	xv := tensor.RandN(rng, 1, 2, 4)

	run := func(checkpointed bool) (gx, g1, g2 *tensor.Tensor) {
		p1 := NewLeaf(w1.Clone(), true)
		p2 := NewLeaf(w2.Clone(), true)
		x := NewLeaf(xv.Clone(), true)
		segment := func(in *Variable) *Variable {
			return MatMul(Tanh(MatMul(in, p1)), p2)
		}
		var out *Variable
		if checkpointed {
			out = Checkpoint(segment, x)
		} else {
			out = segment(x)
		}
		Backward(Sum(out), nil)
		return x.Grad, p1.Grad, p2.Grad
	}

	gx1, g11, g21 := run(false)
	gx2, g12, g22 := run(true)
	if !gx1.AllClose(gx2, 1e-6, 1e-7) {
		t.Fatal("input grads differ under checkpointing")
	}
	if !g11.AllClose(g12, 1e-6, 1e-7) || !g21.AllClose(g22, 1e-6, 1e-7) {
		t.Fatal("parameter grads differ under checkpointing")
	}
}

func TestCheckpointRecomputesExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewLeaf(tensor.RandN(rng, 1, 3, 3), true)
	x := NewLeaf(tensor.RandN(rng, 1, 2, 3), true)
	calls := 0
	var sawDetachedInput bool
	out := Checkpoint(func(in *Variable) *Variable {
		calls++
		if calls == 1 {
			// The forward execution receives a detached input; only the
			// backward re-execution sees a grad-requiring leaf.
			sawDetachedInput = !in.RequiresGrad()
		}
		return MatMul(in, p)
	}, x)
	if calls != 1 {
		t.Fatalf("forward calls = %d", calls)
	}
	if !sawDetachedInput {
		t.Fatal("forward execution must receive a detached input")
	}
	// The caller-visible variable hangs off a single checkpoint node,
	// not fn's internal graph: its only graph input is x itself.
	if out.IsLeaf() {
		t.Fatal("checkpoint output must participate in the outer graph")
	}
	Backward(Sum(out), nil)
	if calls != 2 {
		t.Fatalf("fn must re-execute exactly once in backward, calls = %d", calls)
	}
	if p.Grad == nil || x.Grad == nil {
		t.Fatal("grads missing after checkpointed backward")
	}
}

func TestCheckpointFiresParameterHooks(t *testing.T) {
	// DDP's reducer depends on post-accumulate hooks firing for
	// parameters used inside checkpointed segments.
	rng := rand.New(rand.NewSource(3))
	p := NewLeaf(tensor.RandN(rng, 1, 3, 3), true)
	fired := 0
	p.RegisterPostAccumulateHook(func(*Variable) { fired++ })
	x := Constant(tensor.RandN(rng, 1, 2, 3))
	out := Checkpoint(func(in *Variable) *Variable { return MatMul(in, p) }, NewLeaf(x.Value, true))
	Backward(Sum(out), nil)
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}
}

func TestCheckpointIgnoredInputGetsZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := NewLeaf(tensor.RandN(rng, 1, 2, 2), true)
	out := Checkpoint(func(in *Variable) *Variable {
		return Constant(tensor.Ones(2, 2))
	}, x)
	Backward(Sum(out), nil)
	for _, v := range x.Grad.Data() {
		if v != 0 {
			t.Fatal("ignored input must get zero gradient")
		}
	}
}

func TestNestedCheckpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewLeaf(tensor.RandN(rng, 1, 3, 3), true)
	x := NewLeaf(tensor.RandN(rng, 1, 2, 3), true)
	inner := func(in *Variable) *Variable { return Tanh(MatMul(in, p)) }
	outer := func(in *Variable) *Variable {
		return Checkpoint(inner, Relu(in))
	}
	out := Checkpoint(outer, x)
	Backward(Sum(out), nil)
	if p.Grad == nil || x.Grad == nil {
		t.Fatal("nested checkpoint lost gradients")
	}
	// Compare against plain execution.
	p2 := NewLeaf(p.Value.Clone(), true)
	x2 := NewLeaf(x.Value.Clone(), true)
	out2 := Tanh(MatMul(Relu(x2), p2))
	Backward(Sum(out2), nil)
	if !p.Grad.AllClose(p2.Grad, 1e-6, 1e-7) || !x.Grad.AllClose(x2.Grad, 1e-6, 1e-7) {
		t.Fatal("nested checkpoint grads differ from plain execution")
	}
}
