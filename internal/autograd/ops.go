package autograd

import (
	"math"

	"repro/internal/tensor"
)

// Add returns a + b elementwise.
func Add(a, b *Variable) *Variable {
	out := tensor.Add(a.Value, b.Value)
	return newOp("add", out, func(g *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{g, g}
	}, a, b)
}

// Sub returns a - b elementwise.
func Sub(a, b *Variable) *Variable {
	out := tensor.Sub(a.Value, b.Value)
	return newOp("sub", out, func(g *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{g, tensor.Neg(g)}
	}, a, b)
}

// Mul returns a * b elementwise.
func Mul(a, b *Variable) *Variable {
	av, bv := a.Value, b.Value
	out := tensor.Mul(av, bv)
	return newOp("mul", out, func(g *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{tensor.Mul(g, bv), tensor.Mul(g, av)}
	}, a, b)
}

// MulScalar returns a * s.
func MulScalar(a *Variable, s float32) *Variable {
	out := tensor.MulScalar(a.Value, s)
	return newOp("mulScalar", out, func(g *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{tensor.MulScalar(g, s)}
	}, a)
}

// AddRow returns m + row with row broadcast over leading dimensions
// (bias addition).
func AddRow(m, row *Variable) *Variable {
	n := row.Value.Size()
	out := tensor.AddRow(m.Value, row.Value)
	return newOp("addRow", out, func(g *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{g, tensor.SumRows(g, n)}
	}, m, row)
}

// MulRow returns m * row with row broadcast over leading dimensions
// (per-feature scaling, e.g. a norm layer's gain).
func MulRow(m, row *Variable) *Variable {
	n := row.Value.Size()
	mv, rv := m.Value, row.Value
	out := tensor.MulRow(mv, rv)
	return newOp("mulRow", out, func(g *tensor.Tensor) []*tensor.Tensor {
		gm := tensor.MulRow(g, rv)
		grow := tensor.SumRows(tensor.Mul(g, mv), n)
		return []*tensor.Tensor{gm, grow}
	}, m, row)
}

// MatMul returns the matrix product a·b for 2-D variables.
func MatMul(a, b *Variable) *Variable {
	av, bv := a.Value, b.Value
	out := tensor.MatMul(av, bv)
	return newOp("matmul", out, func(g *tensor.Tensor) []*tensor.Tensor {
		// dA = g·bᵀ, dB = aᵀ·g
		return []*tensor.Tensor{tensor.MatMulTransB(g, bv), tensor.MatMulTransA(av, g)}
	}, a, b)
}

// MatMulTransB returns a·bᵀ for a [m,k] and b [n,k] — the form attention
// scores take (q·kᵀ) without materializing the transpose.
func MatMulTransB(a, b *Variable) *Variable {
	av, bv := a.Value, b.Value
	out := tensor.MatMulTransB(av, bv)
	return newOp("matmulTransB", out, func(g *tensor.Tensor) []*tensor.Tensor {
		// C = A·Bᵀ: dA = g·B, dB = gᵀ·A.
		return []*tensor.Tensor{tensor.MatMul(g, bv), tensor.MatMulTransA(g, av)}
	}, a, b)
}

// SliceCols returns columns [start, end) of a 2-D variable; the gradient
// scatters back into the corresponding columns. Used to split attention
// heads out of a fused projection.
func SliceCols(a *Variable, start, end int) *Variable {
	av := a.Value
	rows, cols := av.Dims(0), av.Dims(1)
	if start < 0 || end > cols || start >= end {
		panic("autograd: SliceCols range invalid")
	}
	width := end - start
	out := tensor.New(rows, width)
	for r := 0; r < rows; r++ {
		copy(out.Data()[r*width:(r+1)*width], av.Data()[r*cols+start:r*cols+end])
	}
	return newOp("sliceCols", out, func(g *tensor.Tensor) []*tensor.Tensor {
		gin := tensor.New(rows, cols)
		for r := 0; r < rows; r++ {
			copy(gin.Data()[r*cols+start:r*cols+end], g.Data()[r*width:(r+1)*width])
		}
		return []*tensor.Tensor{gin}
	}, a)
}

// Reshape returns a view of a with a new shape; the gradient is reshaped
// back on the way down.
func Reshape(a *Variable, shape ...int) *Variable {
	inShape := a.Value.Shape()
	out := a.Value.Reshape(shape...)
	return newOp("reshape", out, func(g *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{g.Reshape(inShape...)}
	}, a)
}

// Relu returns max(0, x).
func Relu(a *Variable) *Variable {
	av := a.Value
	out := tensor.Relu(av)
	return newOp("relu", out, func(g *tensor.Tensor) []*tensor.Tensor {
		gin := tensor.New(av.Shape()...)
		gd, ad, od := gin.Data(), av.Data(), g.Data()
		for i := range gd {
			if ad[i] > 0 {
				gd[i] = od[i]
			}
		}
		return []*tensor.Tensor{gin}
	}, a)
}

// Tanh returns tanh(x).
func Tanh(a *Variable) *Variable {
	out := tensor.Tanh(a.Value)
	return newOp("tanh", out, func(g *tensor.Tensor) []*tensor.Tensor {
		gin := tensor.New(out.Shape()...)
		gd, od, gg := gin.Data(), out.Data(), g.Data()
		for i := range gd {
			gd[i] = gg[i] * (1 - od[i]*od[i])
		}
		return []*tensor.Tensor{gin}
	}, a)
}

// Sigmoid returns 1/(1+e^-x).
func Sigmoid(a *Variable) *Variable {
	out := tensor.Sigmoid(a.Value)
	return newOp("sigmoid", out, func(g *tensor.Tensor) []*tensor.Tensor {
		gin := tensor.New(out.Shape()...)
		gd, od, gg := gin.Data(), out.Data(), g.Data()
		for i := range gd {
			gd[i] = gg[i] * od[i] * (1 - od[i])
		}
		return []*tensor.Tensor{gin}
	}, a)
}

// Gelu returns the tanh-approximated GELU activation.
func Gelu(a *Variable) *Variable {
	av := a.Value
	out := tensor.Gelu(av)
	return newOp("gelu", out, func(g *tensor.Tensor) []*tensor.Tensor {
		const c = 0.7978845608028654
		gin := tensor.New(av.Shape()...)
		gd, ad, gg := gin.Data(), av.Data(), g.Data()
		for i := range gd {
			x := float64(ad[i])
			u := c * (x + 0.044715*x*x*x)
			t := math.Tanh(u)
			du := c * (1 + 3*0.044715*x*x)
			d := 0.5*(1+t) + 0.5*x*(1-t*t)*du
			gd[i] = gg[i] * float32(d)
		}
		return []*tensor.Tensor{gin}
	}, a)
}

// Sum reduces all elements to a scalar.
func Sum(a *Variable) *Variable {
	av := a.Value
	out := tensor.Sum(av)
	return newOp("sum", out, func(g *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{tensor.Full(g.Item(), av.Shape()...)}
	}, a)
}

// Mean reduces all elements to their scalar mean.
func Mean(a *Variable) *Variable {
	av := a.Value
	out := tensor.Mean(av)
	inv := 1 / float32(av.Size())
	return newOp("mean", out, func(g *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{tensor.Full(g.Item()*inv, av.Shape()...)}
	}, a)
}

// AddChannel returns m + bias with bias [c] broadcast over a 4-D tensor
// [n, c, h, w] (convolution bias addition).
func AddChannel(m, bias *Variable) *Variable {
	mv := m.Value
	n, c := mv.Dims(0), mv.Dims(1)
	spatial := mv.Size() / (n * c)
	bv := bias.Value
	out := tensor.New(mv.Shape()...)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * spatial
			bval := bv.Data()[ch]
			for i := 0; i < spatial; i++ {
				out.Data()[base+i] = mv.Data()[base+i] + bval
			}
		}
	}
	return newOp("addChannel", out, func(g *tensor.Tensor) []*tensor.Tensor {
		gb := tensor.New(c)
		for b := 0; b < n; b++ {
			for ch := 0; ch < c; ch++ {
				base := (b*c + ch) * spatial
				var s float32
				for i := 0; i < spatial; i++ {
					s += g.Data()[base+i]
				}
				gb.Data()[ch] += s
			}
		}
		return []*tensor.Tensor{g, gb}
	}, m, bias)
}

// Conv2D applies a 2-D convolution (see tensor.Conv2D).
func Conv2D(in, w *Variable, stride, pad int) *Variable {
	iv, wv := in.Value, w.Value
	out := tensor.Conv2D(iv, wv, stride, pad)
	return newOp("conv2d", out, func(g *tensor.Tensor) []*tensor.Tensor {
		gin, gw := tensor.Conv2DBackward(iv, wv, g, stride, pad)
		return []*tensor.Tensor{gin, gw}
	}, in, w)
}

// AvgPool2D applies global average pooling over [n,c,h,w] -> [n,c].
func AvgPool2D(in *Variable) *Variable {
	iv := in.Value
	h, w := iv.Dims(2), iv.Dims(3)
	out := tensor.AvgPool2D(iv)
	return newOp("avgpool2d", out, func(g *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{tensor.AvgPool2DBackward(g, h, w)}
	}, in)
}

// MaxPool2D applies 2x2/stride-2 max pooling.
func MaxPool2D(in *Variable) *Variable {
	iv := in.Value
	out, arg := tensor.MaxPool2D(iv)
	shape := iv.Shape()
	return newOp("maxpool2d", out, func(g *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{tensor.MaxPool2DBackward(g, arg, shape)}
	}, in)
}

// Embedding gathers rows of weight [vocab, dim] by index, producing
// [len(indices), dim]. The gradient scatters back into the weight rows.
func Embedding(w *Variable, indices []int) *Variable {
	wv := w.Value
	dim := wv.Dims(1)
	out := tensor.New(len(indices), dim)
	for i, idx := range indices {
		copy(out.Data()[i*dim:(i+1)*dim], wv.Data()[idx*dim:(idx+1)*dim])
	}
	return newOp("embedding", out, func(g *tensor.Tensor) []*tensor.Tensor {
		gw := tensor.New(wv.Shape()...)
		for i, idx := range indices {
			row := gw.Data()[idx*dim : (idx+1)*dim]
			grow := g.Data()[i*dim : (i+1)*dim]
			for j := range row {
				row[j] += grow[j]
			}
		}
		return []*tensor.Tensor{gw}
	}, w)
}

// Dropout zeroes each element with probability p and scales survivors by
// 1/(1-p) (inverted dropout). mask is sampled with the caller's RNG via
// the keep slice so distributed ranks can coordinate seeds.
func Dropout(a *Variable, keep []bool, p float32) *Variable {
	if p <= 0 {
		return a
	}
	scale := 1 / (1 - p)
	av := a.Value
	out := tensor.New(av.Shape()...)
	od, ad := out.Data(), av.Data()
	for i := range od {
		if keep[i] {
			od[i] = ad[i] * scale
		}
	}
	return newOp("dropout", out, func(g *tensor.Tensor) []*tensor.Tensor {
		gin := tensor.New(av.Shape()...)
		gd, gg := gin.Data(), g.Data()
		for i := range gd {
			if keep[i] {
				gd[i] = gg[i] * scale
			}
		}
		return []*tensor.Tensor{gin}
	}, a)
}

// Concat concatenates 2-D variables along dimension 1 (columns). All
// inputs must share dim 0.
func Concat(vs ...*Variable) *Variable {
	rows := vs[0].Value.Dims(0)
	total := 0
	for _, v := range vs {
		total += v.Value.Dims(1)
	}
	out := tensor.New(rows, total)
	col := 0
	for _, v := range vs {
		c := v.Value.Dims(1)
		for r := 0; r < rows; r++ {
			copy(out.Data()[r*total+col:r*total+col+c], v.Value.Data()[r*c:(r+1)*c])
		}
		col += c
	}
	widths := make([]int, len(vs))
	for i, v := range vs {
		widths[i] = v.Value.Dims(1)
	}
	return newOp("concat", out, func(g *tensor.Tensor) []*tensor.Tensor {
		grads := make([]*tensor.Tensor, len(vs))
		col := 0
		for i, c := range widths {
			gi := tensor.New(rows, c)
			for r := 0; r < rows; r++ {
				copy(gi.Data()[r*c:(r+1)*c], g.Data()[r*total+col:r*total+col+c])
			}
			grads[i] = gi
			col += c
		}
		return grads
	}, vs...)
}
