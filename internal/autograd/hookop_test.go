package autograd

import (
	"testing"

	"repro/internal/tensor"
)

// TestBackwardHookFiresBeforeProducerBackward pins the ordering
// contract ZeRO-3 depends on: the hook inserted on a layer's output
// runs before the gradient reaches the layer's own parameters, and the
// gradient values are unchanged by the interception.
func TestBackwardHookFiresBeforeProducerBackward(t *testing.T) {
	w := NewLeaf(tensor.FromSlice([]float32{2, 3}, 2), true)
	x := Constant(tensor.FromSlice([]float32{4, 5}, 2))

	var events []string
	w.RegisterPostAccumulateHook(func(*Variable) { events = append(events, "w-grad") })

	out := Mul(w, x)
	out = BackwardHook(out, func() { events = append(events, "hook") })
	loss := Sum(out)
	Backward(loss, nil)

	if len(events) != 2 || events[0] != "hook" || events[1] != "w-grad" {
		t.Fatalf("event order %v, want [hook w-grad]", events)
	}
	// d(sum(w*x))/dw = x, untouched by the identity hop.
	for i, want := range []float32{4, 5} {
		if got := w.Grad.Data()[i]; got != want {
			t.Fatalf("w.Grad[%d] = %v, want %v", i, got, want)
		}
	}
}

// TestBackwardHookDetachedInput: wrapping a non-graph value returns a
// detached constant and the hook never fires.
func TestBackwardHookDetachedInput(t *testing.T) {
	c := Constant(tensor.FromSlice([]float32{1}, 1))
	fired := false
	out := BackwardHook(c, func() { fired = true })
	if out.RequiresGrad() {
		t.Fatal("hook on a constant must stay detached")
	}
	if fired {
		t.Fatal("hook fired during construction")
	}
}
