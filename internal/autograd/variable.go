// Package autograd implements a dynamic reverse-mode automatic
// differentiation engine in the style of PyTorch's autograd.
//
// A fresh graph is recorded on every forward pass (Section 2.1 of the DDP
// paper): each differentiable operation allocates a node holding its
// backward function and input references. Backward walks the graph from
// the loss, accumulates gradients into leaf Variables, and fires
// post-accumulation hooks — the exact interception point
// DistributedDataParallel uses to trigger bucketed AllReduce while the
// backward pass is still running.
package autograd

import (
	"fmt"

	"repro/internal/tensor"
)

// Hook is a callback fired after a leaf variable's gradient for the
// current backward pass has been fully accumulated into Grad.
type Hook func(v *Variable)

// Variable wraps a tensor and participates in graph construction.
// Leaf variables (parameters, inputs) have no creator node; non-leaf
// variables remember the operation that produced them.
type Variable struct {
	// Value is the forward-pass data.
	Value *tensor.Tensor
	// Grad accumulates gradients across backward passes until ZeroGrad,
	// matching PyTorch's .grad accumulation semantics that no_sync
	// gradient accumulation depends on. Nil until first backward.
	Grad *tensor.Tensor

	name         string
	requiresGrad bool
	node         *node
	hooks        []Hook
}

// node records how a non-leaf variable was produced.
type node struct {
	op     string
	inputs []*Variable
	// backward maps the gradient of the node's output to gradients of
	// each input (nil entries for inputs that do not require grad).
	backward func(grad *tensor.Tensor) []*tensor.Tensor
}

// NewLeaf returns a leaf variable. If requiresGrad is true, gradients are
// accumulated into Grad during backward and hooks fire after accumulation.
func NewLeaf(t *tensor.Tensor, requiresGrad bool) *Variable {
	return &Variable{Value: t, requiresGrad: requiresGrad}
}

// Constant returns a leaf variable that never requires grad.
func Constant(t *tensor.Tensor) *Variable { return NewLeaf(t, false) }

// NewNamedLeaf is NewLeaf with a debug name (parameter names in nn).
func NewNamedLeaf(name string, t *tensor.Tensor, requiresGrad bool) *Variable {
	v := NewLeaf(t, requiresGrad)
	v.name = name
	return v
}

// Name returns the debug name assigned at construction, if any.
func (v *Variable) Name() string { return v.name }

// SetName sets the debug name.
func (v *Variable) SetName(s string) { v.name = s }

// RequiresGrad reports whether backward accumulates a gradient for v.
func (v *Variable) RequiresGrad() bool { return v.requiresGrad }

// IsLeaf reports whether v was created by NewLeaf rather than an op.
func (v *Variable) IsLeaf() bool { return v.node == nil }

// RegisterPostAccumulateHook registers fn to run after each backward pass
// finishes accumulating v's gradient. This mirrors the gradient
// accumulator post-hooks DDP installs on every parameter (Algorithm 1,
// line 7 of the paper). Hooks run in registration order.
func (v *Variable) RegisterPostAccumulateHook(fn Hook) {
	v.hooks = append(v.hooks, fn)
}

// ClearHooks removes all registered hooks.
func (v *Variable) ClearHooks() { v.hooks = nil }

// ZeroGrad clears the accumulated gradient.
func (v *Variable) ZeroGrad() { v.Grad = nil }

// String summarizes the variable.
func (v *Variable) String() string {
	kind := "leaf"
	if v.node != nil {
		kind = v.node.op
	}
	return fmt.Sprintf("Variable(%s %v grad=%t)", kind, v.Value.Shape(), v.requiresGrad)
}

// anyRequiresGrad reports whether graph construction is needed for an op
// with the given inputs.
func anyRequiresGrad(inputs ...*Variable) bool {
	for _, in := range inputs {
		if in.requiresGrad || in.node != nil {
			return true
		}
	}
	return false
}

// newOp wires up a non-leaf variable if any input participates in the
// graph; otherwise it returns a detached constant (pure inference).
func newOp(op string, out *tensor.Tensor, backward func(grad *tensor.Tensor) []*tensor.Tensor, inputs ...*Variable) *Variable {
	if !anyRequiresGrad(inputs...) {
		return Constant(out)
	}
	return &Variable{
		Value:        out,
		requiresGrad: true,
		node: &node{
			op:       op,
			inputs:   append([]*Variable(nil), inputs...),
			backward: backward,
		},
	}
}

// accumulate adds g into v.Grad, cloning on first touch so callers retain
// ownership of g.
func (v *Variable) accumulate(g *tensor.Tensor) {
	if v.Grad == nil {
		v.Grad = g.Clone()
		return
	}
	tensor.AddInPlace(v.Grad, g)
}
