package autograd

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNormStats holds the per-channel batch statistics computed by
// BatchNorm's forward pass, which layers use to maintain running
// mean/variance buffers (the model buffers DDP broadcasts from rank 0).
type BatchNormStats struct {
	Mean, Var []float32
}

// BatchNorm normalizes per channel. Input x is either [n, c] or
// [n, c, h, w]; gamma and beta are [c]. When training is true batch
// statistics are used (and returned); otherwise the provided running
// statistics are used and stats is nil.
func BatchNorm(x, gamma, beta *Variable, runningMean, runningVar []float32, eps float32, training bool) (*Variable, *BatchNormStats) {
	xv := x.Value
	var n, c, spatial int
	switch xv.Dim() {
	case 2:
		n, c, spatial = xv.Dims(0), xv.Dims(1), 1
	case 4:
		n, c, spatial = xv.Dims(0), xv.Dims(1), xv.Dims(2)*xv.Dims(3)
	default:
		panic(fmt.Sprintf("autograd: BatchNorm on shape %v", xv.Shape()))
	}

	mean := make([]float32, c)
	variance := make([]float32, c)
	count := float32(n * spatial)
	if training {
		for ch := 0; ch < c; ch++ {
			var s float64
			for b := 0; b < n; b++ {
				base := (b*c + ch) * spatial
				for i := 0; i < spatial; i++ {
					s += float64(xv.Data()[base+i])
				}
			}
			mean[ch] = float32(s / float64(count))
		}
		for ch := 0; ch < c; ch++ {
			var s float64
			m := float64(mean[ch])
			for b := 0; b < n; b++ {
				base := (b*c + ch) * spatial
				for i := 0; i < spatial; i++ {
					d := float64(xv.Data()[base+i]) - m
					s += d * d
				}
			}
			variance[ch] = float32(s / float64(count))
		}
	} else {
		copy(mean, runningMean)
		copy(variance, runningVar)
	}

	invStd := make([]float32, c)
	for ch := 0; ch < c; ch++ {
		invStd[ch] = float32(1 / math.Sqrt(float64(variance[ch]+eps)))
	}

	xhat := tensor.New(xv.Shape()...)
	out := tensor.New(xv.Shape()...)
	gv, bv := gamma.Value.Data(), beta.Value.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * spatial
			for i := 0; i < spatial; i++ {
				xh := (xv.Data()[base+i] - mean[ch]) * invStd[ch]
				xhat.Data()[base+i] = xh
				out.Data()[base+i] = gv[ch]*xh + bv[ch]
			}
		}
	}

	var stats *BatchNormStats
	if training {
		stats = &BatchNormStats{Mean: mean, Var: variance}
	}

	backward := func(g *tensor.Tensor) []*tensor.Tensor {
		gGamma := tensor.New(c)
		gBeta := tensor.New(c)
		for b := 0; b < n; b++ {
			for ch := 0; ch < c; ch++ {
				base := (b*c + ch) * spatial
				for i := 0; i < spatial; i++ {
					gGamma.Data()[ch] += g.Data()[base+i] * xhat.Data()[base+i]
					gBeta.Data()[ch] += g.Data()[base+i]
				}
			}
		}
		gx := tensor.New(xv.Shape()...)
		if training {
			// Full batch-norm backward: dx = (gamma*invStd/count) *
			// (count*dy - sum(dy) - xhat*sum(dy*xhat)).
			for b := 0; b < n; b++ {
				for ch := 0; ch < c; ch++ {
					base := (b*c + ch) * spatial
					for i := 0; i < spatial; i++ {
						dy := g.Data()[base+i]
						gx.Data()[base+i] = gv[ch] * invStd[ch] / count *
							(count*dy - gBeta.Data()[ch] - xhat.Data()[base+i]*gGamma.Data()[ch])
					}
				}
			}
		} else {
			for b := 0; b < n; b++ {
				for ch := 0; ch < c; ch++ {
					base := (b*c + ch) * spatial
					for i := 0; i < spatial; i++ {
						gx.Data()[base+i] = g.Data()[base+i] * gv[ch] * invStd[ch]
					}
				}
			}
		}
		return []*tensor.Tensor{gx, gGamma, gBeta}
	}
	return newOp("batchnorm", out, backward, x, gamma, beta), stats
}

// LayerNorm normalizes the last dimension of x [rows, dim] and applies
// gain and bias [dim], as used in transformer blocks.
func LayerNorm(x, gain, bias *Variable, eps float32) *Variable {
	xv := x.Value
	if xv.Dim() != 2 {
		panic(fmt.Sprintf("autograd: LayerNorm on shape %v", xv.Shape()))
	}
	rows, dim := xv.Dims(0), xv.Dims(1)
	xhat := tensor.New(rows, dim)
	invStd := make([]float32, rows)
	out := tensor.New(rows, dim)
	gv, bv := gain.Value.Data(), bias.Value.Data()
	for r := 0; r < rows; r++ {
		row := xv.Data()[r*dim : (r+1)*dim]
		var s float64
		for _, v := range row {
			s += float64(v)
		}
		m := float32(s / float64(dim))
		var sq float64
		for _, v := range row {
			d := float64(v - m)
			sq += d * d
		}
		inv := float32(1 / math.Sqrt(sq/float64(dim)+float64(eps)))
		invStd[r] = inv
		for j, v := range row {
			xh := (v - m) * inv
			xhat.Data()[r*dim+j] = xh
			out.Data()[r*dim+j] = gv[j]*xh + bv[j]
		}
	}
	backward := func(g *tensor.Tensor) []*tensor.Tensor {
		gGain := tensor.New(dim)
		gBias := tensor.New(dim)
		gx := tensor.New(rows, dim)
		for r := 0; r < rows; r++ {
			var sumDy, sumDyXhat float32
			for j := 0; j < dim; j++ {
				dy := g.Data()[r*dim+j] * gv[j]
				sumDy += dy
				sumDyXhat += dy * xhat.Data()[r*dim+j]
				gGain.Data()[j] += g.Data()[r*dim+j] * xhat.Data()[r*dim+j]
				gBias.Data()[j] += g.Data()[r*dim+j]
			}
			d := float32(dim)
			for j := 0; j < dim; j++ {
				dy := g.Data()[r*dim+j] * gv[j]
				gx.Data()[r*dim+j] = invStd[r] / d * (d*dy - sumDy - xhat.Data()[r*dim+j]*sumDyXhat)
			}
		}
		return []*tensor.Tensor{gx, gGain, gBias}
	}
	return newOp("layernorm", out, backward, x, gain, bias)
}
