package autograd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numGrad computes a numerical gradient of f() with respect to element i
// of t by central differences.
func numGrad(t *tensor.Tensor, i int, f func() float32) float32 {
	const eps = 1e-3
	orig := t.Data()[i]
	t.Data()[i] = orig + eps
	up := f()
	t.Data()[i] = orig - eps
	down := f()
	t.Data()[i] = orig
	return (up - down) / (2 * eps)
}

// checkGrads verifies Backward's gradients against finite differences for
// each listed leaf, where forward rebuilds the graph and returns the
// scalar loss variable.
func checkGrads(t *testing.T, leaves []*Variable, forward func() *Variable, tol float64) {
	t.Helper()
	for _, leaf := range leaves {
		leaf.ZeroGrad()
	}
	loss := forward()
	Backward(loss, nil)
	for li, leaf := range leaves {
		if leaf.Grad == nil {
			t.Fatalf("leaf %d got no gradient", li)
		}
		for _, i := range sampleIndices(leaf.Value.Size()) {
			num := numGrad(leaf.Value, i, func() float32 { return forward().Value.Item() })
			got := leaf.Grad.Data()[i]
			if math.Abs(float64(num-got)) > tol*(1+math.Abs(float64(num))) {
				t.Errorf("leaf %d grad[%d] = %v, numerical %v", li, i, got, num)
			}
		}
	}
}

func sampleIndices(n int) []int {
	if n <= 4 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	return []int{0, n / 3, n / 2, n - 1}
}

func randVar(rng *rand.Rand, shape ...int) *Variable {
	return NewLeaf(tensor.RandN(rng, 1, shape...), true)
}

func TestBackwardOnLeaf(t *testing.T) {
	v := NewLeaf(tensor.Scalar(2), true)
	Backward(v, nil)
	if v.Grad == nil || v.Grad.Item() != 1 {
		t.Fatalf("leaf grad = %v, want 1", v.Grad)
	}
}

func TestBackwardRequiresScalarForImplicitGrad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Backward(NewLeaf(tensor.New(3), true), nil)
}

func TestAddGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randVar(rng, 3), randVar(rng, 3)
	checkGrads(t, []*Variable{a, b}, func() *Variable { return Sum(Add(a, b)) }, 1e-2)
}

func TestSubMulGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randVar(rng, 4), randVar(rng, 4)
	checkGrads(t, []*Variable{a, b}, func() *Variable { return Sum(Mul(Sub(a, b), a)) }, 1e-2)
}

func TestMatMulGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randVar(rng, 3, 4), randVar(rng, 4, 2)
	checkGrads(t, []*Variable{a, b}, func() *Variable { return Sum(MatMul(a, b)) }, 1e-2)
}

func TestAddRowMulRowGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, row, scale := randVar(rng, 3, 4), randVar(rng, 4), randVar(rng, 4)
	checkGrads(t, []*Variable{m, row, scale}, func() *Variable {
		return Sum(MulRow(AddRow(m, row), scale))
	}, 1e-2)
}

func TestActivationGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for name, op := range map[string]func(*Variable) *Variable{
		"relu": Relu, "tanh": Tanh, "sigmoid": Sigmoid, "gelu": Gelu,
	} {
		a := NewLeaf(tensor.RandN(rng, 1, 6), true)
		// Shift away from relu's kink at 0 for stable finite differences.
		for i, v := range a.Value.Data() {
			if v > -0.05 && v < 0.05 {
				a.Value.Data()[i] = 0.1
			}
		}
		checkGrads(t, []*Variable{a}, func() *Variable { return Sum(op(a)) }, 2e-2)
		_ = name
	}
}

func TestMeanGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randVar(rng, 5)
	checkGrads(t, []*Variable{a}, func() *Variable { return Mean(Mul(a, a)) }, 1e-2)
}

func TestMulScalarGrad(t *testing.T) {
	a := NewLeaf(tensor.FromSlice([]float32{1, 2}, 2), true)
	Backward(Sum(MulScalar(a, 3)), nil)
	if a.Grad.At(0) != 3 || a.Grad.At(1) != 3 {
		t.Fatalf("MulScalar grad = %v", a.Grad)
	}
}

func TestReshapeGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randVar(rng, 2, 3)
	checkGrads(t, []*Variable{a}, func() *Variable {
		return Sum(Mul(Reshape(a, 3, 2), Reshape(a, 3, 2)))
	}, 1e-2)
}

func TestConv2DGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	in := randVar(rng, 1, 2, 4, 4)
	w := randVar(rng, 3, 2, 3, 3)
	checkGrads(t, []*Variable{in, w}, func() *Variable { return Sum(Conv2D(in, w, 1, 1)) }, 2e-2)
}

func TestPoolGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := randVar(rng, 2, 3, 4, 4)
	checkGrads(t, []*Variable{in}, func() *Variable { return Sum(AvgPool2D(in)) }, 1e-2)
	in2 := randVar(rng, 1, 2, 4, 4)
	checkGrads(t, []*Variable{in2}, func() *Variable {
		return Sum(Mul(MaxPool2D(in2), MaxPool2D(in2)))
	}, 2e-2)
}

func TestEmbeddingGrad(t *testing.T) {
	w := NewLeaf(tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2), true)
	out := Embedding(w, []int{2, 0, 2})
	Backward(Sum(out), nil)
	// Row 2 gathered twice, row 0 once, row 1 never.
	want := tensor.FromSlice([]float32{1, 1, 0, 0, 2, 2}, 3, 2)
	if !w.Grad.Equal(want) {
		t.Fatalf("Embedding grad = %v, want %v", w.Grad, want)
	}
}

func TestDropoutGradRespectsMask(t *testing.T) {
	a := NewLeaf(tensor.FromSlice([]float32{1, 2, 3, 4}, 4), true)
	keep := []bool{true, false, true, false}
	out := Dropout(a, keep, 0.5)
	if out.Value.At(0) != 2 || out.Value.At(1) != 0 {
		t.Fatalf("Dropout forward = %v", out.Value)
	}
	Backward(Sum(out), nil)
	if a.Grad.At(0) != 2 || a.Grad.At(1) != 0 || a.Grad.At(2) != 2 {
		t.Fatalf("Dropout grad = %v", a.Grad)
	}
}

func TestConcatGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a, b := randVar(rng, 2, 3), randVar(rng, 2, 2)
	checkGrads(t, []*Variable{a, b}, func() *Variable { return Sum(Mul(Concat(a, b), Concat(a, b))) }, 2e-2)
}

func TestMSELossGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randVar(rng, 2, 3)
	target := Constant(tensor.RandN(rng, 1, 2, 3))
	checkGrads(t, []*Variable{p}, func() *Variable { return MSELoss(p, target) }, 1e-2)
}

func TestCrossEntropyGradAndValue(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	logits := randVar(rng, 4, 5)
	targets := []int{0, 3, 2, 4}
	checkGrads(t, []*Variable{logits}, func() *Variable { return CrossEntropyLoss(logits, targets) }, 1e-2)

	// Uniform logits must give loss = ln(classes).
	u := NewLeaf(tensor.New(2, 8), true)
	loss := CrossEntropyLoss(u, []int{1, 5})
	if math.Abs(float64(loss.Value.Item())-math.Log(8)) > 1e-5 {
		t.Fatalf("uniform CE loss = %v, want ln 8", loss.Value.Item())
	}
}

func TestSoftmaxRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randVar(rng, 2, 4)
	w := Constant(tensor.RandN(rng, 1, 2, 4))
	checkGrads(t, []*Variable{a}, func() *Variable { return Sum(Mul(SoftmaxRows(a), w)) }, 2e-2)
}

func TestBatchNormGradTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := randVar(rng, 4, 3)
	gamma := NewLeaf(tensor.Ones(3), true)
	beta := NewLeaf(tensor.New(3), true)
	checkGrads(t, []*Variable{x, gamma, beta}, func() *Variable {
		out, _ := BatchNorm(x, gamma, beta, nil, nil, 1e-5, true)
		return Sum(Mul(out, out))
	}, 5e-2)
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	x := NewLeaf(tensor.FromSlice([]float32{2, 4}, 1, 2), false)
	gamma := NewLeaf(tensor.Ones(2), true)
	beta := NewLeaf(tensor.New(2), true)
	out, stats := BatchNorm(x, gamma, beta, []float32{1, 1}, []float32{4, 4}, 0, false)
	if stats != nil {
		t.Fatal("eval mode must not return batch stats")
	}
	// (2-1)/2 = 0.5, (4-1)/2 = 1.5
	if math.Abs(float64(out.Value.At(0, 0)-0.5)) > 1e-5 || math.Abs(float64(out.Value.At(0, 1)-1.5)) > 1e-5 {
		t.Fatalf("eval batchnorm = %v", out.Value)
	}
}

func TestBatchNorm4DShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := randVar(rng, 2, 3, 2, 2)
	gamma := NewLeaf(tensor.Ones(3), true)
	beta := NewLeaf(tensor.New(3), true)
	out, stats := BatchNorm(x, gamma, beta, nil, nil, 1e-5, true)
	if !out.Value.SameShape(x.Value) {
		t.Fatalf("4D batchnorm shape = %v", out.Value.Shape())
	}
	if len(stats.Mean) != 3 || len(stats.Var) != 3 {
		t.Fatalf("stats lengths %d/%d", len(stats.Mean), len(stats.Var))
	}
	// Normalized output per channel must have ~zero mean.
	Backward(Sum(out), nil)
	if x.Grad == nil {
		t.Fatal("no grad through 4D batchnorm")
	}
}

func TestLayerNormGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := randVar(rng, 3, 5)
	gain := NewLeaf(tensor.Ones(5), true)
	bias := NewLeaf(tensor.New(5), true)
	checkGrads(t, []*Variable{x, gain, bias}, func() *Variable {
		return Sum(Mul(LayerNorm(x, gain, bias, 1e-5), LayerNorm(x, gain, bias, 1e-5)))
	}, 5e-2)
}

func TestSharedParameterAccumulatesOnce(t *testing.T) {
	// A parameter used twice in the graph must receive the sum of both
	// contributions, and its post-hook must fire exactly once per pass.
	w := NewLeaf(tensor.FromSlice([]float32{2}, 1), true)
	fires := 0
	w.RegisterPostAccumulateHook(func(v *Variable) { fires++ })
	// loss = w*w  => dw = 2w = 4
	loss := Sum(Mul(w, w))
	Backward(loss, nil)
	if fires != 1 {
		t.Fatalf("hook fired %d times, want 1", fires)
	}
	if w.Grad.At(0) != 4 {
		t.Fatalf("shared grad = %v, want 4", w.Grad.At(0))
	}
}

func TestGradAccumulatesAcrossBackwardPasses(t *testing.T) {
	// PyTorch semantics: .grad += on every backward until zeroed. This is
	// what makes no_sync gradient accumulation work.
	w := NewLeaf(tensor.FromSlice([]float32{1}, 1), true)
	for i := 0; i < 3; i++ {
		Backward(Sum(MulScalar(w, 2)), nil)
	}
	if w.Grad.At(0) != 6 {
		t.Fatalf("accumulated grad = %v, want 6", w.Grad.At(0))
	}
	w.ZeroGrad()
	if w.Grad != nil {
		t.Fatal("ZeroGrad must clear")
	}
}

func TestHookFiringOrderFollowsBackwardOrder(t *testing.T) {
	// In a chain y = w3*(w2*(w1*x)), gradients become ready in reverse
	// order w3, w2, w1 — the property DDP's reverse-order bucketing
	// assumes (Section 3.2.3).
	rng := rand.New(rand.NewSource(17))
	x := Constant(tensor.RandN(rng, 1, 2, 2))
	w1, w2, w3 := randVar(rng, 2, 2), randVar(rng, 2, 2), randVar(rng, 2, 2)
	var order []string
	for _, p := range []struct {
		v *Variable
		n string
	}{{w1, "w1"}, {w2, "w2"}, {w3, "w3"}} {
		name := p.n
		p.v.RegisterPostAccumulateHook(func(*Variable) { order = append(order, name) })
	}
	loss := Sum(MatMul(MatMul(MatMul(x, w1), w2), w3))
	Backward(loss, nil)
	if len(order) != 3 || order[0] != "w3" || order[1] != "w2" || order[2] != "w1" {
		t.Fatalf("hook order = %v, want [w3 w2 w1]", order)
	}
}

func TestUnusedLeafGetsNoGradientOrHook(t *testing.T) {
	// The Fig 3(b) failure mode: a parameter skipped by the forward pass
	// never fires its hook. DDP must detect this by graph traversal.
	rng := rand.New(rand.NewSource(18))
	used := randVar(rng, 2)
	unused := randVar(rng, 2)
	fired := false
	unused.RegisterPostAccumulateHook(func(*Variable) { fired = true })
	Backward(Sum(used), nil)
	if fired || unused.Grad != nil {
		t.Fatal("unused leaf must not receive gradient or fire hook")
	}
}

func TestLeavesTraversal(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a, b := randVar(rng, 2), randVar(rng, 2)
	c := randVar(rng, 2)
	_ = c
	frozen := NewLeaf(tensor.RandN(rng, 1, 2), false)
	out := Add(Add(a, b), Constant(frozen.Value))
	leaves := Leaves(out)
	if len(leaves) != 2 {
		t.Fatalf("Leaves = %d, want 2 (c unused, frozen not requiring grad)", len(leaves))
	}
	set := LeafSet(out)
	if !set[a] || !set[b] || set[c] {
		t.Fatalf("LeafSet wrong: %v", set)
	}
}

func TestDiamondGraphGradient(t *testing.T) {
	// x feeds two branches that rejoin: gradient must be the sum of both
	// paths. loss = sum(x*x + 3x) => d/dx = 2x + 3.
	x := NewLeaf(tensor.FromSlice([]float32{2}, 1), true)
	loss := Sum(Add(Mul(x, x), MulScalar(x, 3)))
	Backward(loss, nil)
	if x.Grad.At(0) != 7 {
		t.Fatalf("diamond grad = %v, want 7", x.Grad.At(0))
	}
}

func TestInferenceModeBuildsNoGraph(t *testing.T) {
	a := Constant(tensor.FromSlice([]float32{1, 2}, 2))
	b := Constant(tensor.FromSlice([]float32{3, 4}, 2))
	out := Add(a, b)
	if !out.IsLeaf() || out.RequiresGrad() {
		t.Fatal("ops on constants must stay detached")
	}
}

func TestExplicitGradientSeed(t *testing.T) {
	a := NewLeaf(tensor.FromSlice([]float32{1, 2}, 2), true)
	out := MulScalar(a, 2)
	Backward(out, tensor.FromSlice([]float32{10, 100}, 2))
	if a.Grad.At(0) != 20 || a.Grad.At(1) != 200 {
		t.Fatalf("seeded grad = %v", a.Grad)
	}
}
