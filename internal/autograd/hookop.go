package autograd

import "repro/internal/tensor"

// BackwardHook returns a variable with v's value whose backward pass
// calls fn before propagating the gradient — unchanged — into v's
// subgraph. Because the hook node is the consumer of v, topological
// order guarantees fn runs before the backward of every op that
// produced v; inserting one on a layer's forward output therefore
// gives a callback that fires just before that layer's own backward
// computation needs its weights. That is exactly the re-gather point
// ZeRO-3 parameter sharding needs: internal/fsdp frees non-owned
// parameter shards after each layer's forward and uses this hook to
// AllGather them back ahead of the layer's gradient math. When v does
// not participate in the graph the hook never fires (there is no
// backward to intercept) and a detached constant is returned.
func BackwardHook(v *Variable, fn func()) *Variable {
	return newOp("backward_hook", v.Value, func(grad *tensor.Tensor) []*tensor.Tensor {
		fn()
		return []*tensor.Tensor{grad}
	}, v)
}
