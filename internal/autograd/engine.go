package autograd

import (
	"fmt"

	"repro/internal/tensor"
)

// Backward runs reverse-mode differentiation from root, seeding the
// root gradient with grad (or ones if grad is nil, which is only allowed
// for one-element roots, matching loss.backward()).
//
// Gradients for leaf variables with RequiresGrad are accumulated into
// their Grad field; post-accumulation hooks fire immediately after each
// leaf's gradient is complete for this pass — leaves therefore become
// "ready" one at a time while the pass is still executing, which is what
// lets DDP overlap AllReduce with the remaining backward computation.
func Backward(root *Variable, grad *tensor.Tensor) {
	if grad == nil {
		if root.Value.Size() != 1 {
			panic(fmt.Sprintf("autograd: Backward without explicit gradient on tensor of %d elements", root.Value.Size()))
		}
		grad = tensor.Ones(root.Value.Shape()...)
	}
	if !grad.SameShape(root.Value) {
		panic(fmt.Sprintf("autograd: gradient shape %v does not match root %v", grad.Shape(), root.Value.Shape()))
	}
	if root.node == nil {
		if root.requiresGrad {
			root.accumulate(grad)
			for _, h := range root.hooks {
				h(root)
			}
		}
		return
	}

	// Count, over the subgraph reachable from root, how many consumers
	// each variable has. A variable's gradient is complete once all of
	// its consumers have contributed.
	uses := make(map[*Variable]int)
	visited := make(map[*Variable]bool)
	var dfs func(v *Variable)
	dfs = func(v *Variable) {
		if visited[v] {
			return
		}
		visited[v] = true
		if v.node == nil {
			return
		}
		for _, in := range v.node.inputs {
			uses[in]++
			dfs(in)
		}
	}
	dfs(root)

	grads := map[*Variable]*tensor.Tensor{root: grad.Clone()}
	pending := uses // alias: pending contributions remaining per variable
	queue := []*Variable{root}

	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		g := grads[v]
		delete(grads, v)

		if v.node == nil {
			if v.requiresGrad {
				v.accumulate(g)
				for _, h := range v.hooks {
					h(v)
				}
			}
			continue
		}

		inGrads := v.node.backward(g)
		if len(inGrads) != len(v.node.inputs) {
			panic(fmt.Sprintf("autograd: op %s returned %d gradients for %d inputs", v.node.op, len(inGrads), len(v.node.inputs)))
		}
		for i, in := range v.node.inputs {
			gi := inGrads[i]
			if gi != nil {
				if !gi.SameShape(in.Value) {
					panic(fmt.Sprintf("autograd: op %s produced gradient shape %v for input shape %v", v.node.op, gi.Shape(), in.Value.Shape()))
				}
				if acc, ok := grads[in]; ok {
					tensor.AddInPlace(acc, gi)
				} else {
					grads[in] = gi.Clone()
				}
			}
			pending[in]--
			if pending[in] == 0 {
				if _, ok := grads[in]; ok {
					queue = append(queue, in)
				}
			}
		}
	}
}

// Leaves returns every leaf variable reachable from root through the
// autograd graph, in a deterministic discovery order. DDP traverses the
// graph from the forward output exactly this way to find which
// parameters participate in the current iteration (Algorithm 1, line 10).
func Leaves(root *Variable) []*Variable {
	var out []*Variable
	seen := make(map[*Variable]bool)
	var dfs func(v *Variable)
	dfs = func(v *Variable) {
		if seen[v] {
			return
		}
		seen[v] = true
		if v.node == nil {
			if v.requiresGrad {
				out = append(out, v)
			}
			return
		}
		for _, in := range v.node.inputs {
			dfs(in)
		}
	}
	dfs(root)
	return out
}

// LeafSet returns the reachable leaves as a set for O(1) membership tests.
func LeafSet(root *Variable) map[*Variable]bool {
	set := make(map[*Variable]bool)
	for _, v := range Leaves(root) {
		set[v] = true
	}
	return set
}
