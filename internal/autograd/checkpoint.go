package autograd

import "repro/internal/tensor"

// Checkpoint runs fn without recording its internal autograd graph and
// recomputes it during the backward pass — activation checkpointing,
// the recomputation technique ZeRO (paper Section 7) uses to trade
// compute for activation memory.
//
// Forward: fn runs on a detached copy of x and only the output values
// are kept; the transient graph fn builds (and every intermediate
// activation it references) becomes garbage as soon as Checkpoint
// returns, instead of living until the backward pass. Backward: fn is
// re-executed and backpropagated through; gradients for parameters used
// inside fn accumulate into those parameters directly (and fire their
// post-hooks, so DDP's bucketed AllReduce works through checkpointed
// segments).
//
// fn must be deterministic between the two executions: layers with
// internal randomness (Dropout, LayerDrop) must replay the same
// decisions, and stateful layers (BatchNorm running stats) will observe
// the forward twice — prefer checkpointing pure segments.
func Checkpoint(fn func(*Variable) *Variable, x *Variable) *Variable {
	detachedOut := fn(Constant(x.Value))
	backward := func(g *tensor.Tensor) []*tensor.Tensor {
		in := NewLeaf(x.Value, true)
		out := fn(in)
		Backward(out, g)
		if in.Grad == nil {
			// fn ignored its input (e.g. returned a constant); the
			// input gradient is zero.
			return []*tensor.Tensor{tensor.New(x.Value.Shape()...)}
		}
		return []*tensor.Tensor{in.Grad}
	}
	// Unlike ordinary ops, the node must exist even when x itself does
	// not require grad: parameters captured inside fn still need the
	// backward re-execution to receive their gradients.
	return &Variable{
		Value:        detachedOut.Value,
		requiresGrad: true,
		node: &node{
			op:       "checkpoint",
			inputs:   []*Variable{x},
			backward: backward,
		},
	}
}
