package stats

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Butterworth designs an order-n Butterworth low-pass digital filter
// with normalized cutoff frequency wn in (0, 1), where 1 is the Nyquist
// frequency — the same parameterization as scipy.signal.butter. It
// returns numerator (b) and denominator (a) coefficients with a[0] = 1.
func Butterworth(order int, wn float64) (b, a []float64, err error) {
	if order < 1 || order > 8 {
		return nil, nil, fmt.Errorf("stats: unsupported filter order %d", order)
	}
	if wn <= 0 || wn >= 1 {
		return nil, nil, fmt.Errorf("stats: cutoff %v outside (0, 1)", wn)
	}
	// Analog prototype poles on the unit circle's left half.
	warped := math.Tan(math.Pi * wn / 2) // bilinear prewarp (fs = 2)
	poles := make([]complex128, order)
	for k := 0; k < order; k++ {
		theta := math.Pi * float64(2*k+1) / float64(2*order)
		p := -cmplx.Exp(complex(0, -theta)) // e^{j(pi/2 + theta)} form
		p = complex(-math.Sin(theta), math.Cos(theta))
		poles[k] = p * complex(warped, 0)
	}
	// Bilinear transform: z = (1 + p) / (1 - p) with fs = 2 (T = 1/2,
	// matching the prewarp above).
	zPoles := make([]complex128, order)
	for i, p := range poles {
		zPoles[i] = (1 + p) / (1 - p)
	}
	// All zeros at z = -1.
	zZeros := make([]complex128, order)
	for i := range zZeros {
		zZeros[i] = -1
	}
	bC := polyFromRoots(zZeros)
	aC := polyFromRoots(zPoles)
	// Normalize to unit gain at DC (z = 1).
	gain := polyEval(aC, 1) / polyEval(bC, 1)
	b = make([]float64, order+1)
	a = make([]float64, order+1)
	for i := range bC {
		b[i] = real(bC[i] * gain)
		a[i] = real(aC[i])
	}
	return b, a, nil
}

// polyFromRoots expands prod (z - r_i) into descending-power
// coefficients.
func polyFromRoots(roots []complex128) []complex128 {
	coeffs := []complex128{1}
	for _, r := range roots {
		next := make([]complex128, len(coeffs)+1)
		for i, c := range coeffs {
			next[i] += c
			next[i+1] -= c * r
		}
		coeffs = next
	}
	return coeffs
}

// polyEval evaluates descending-power coefficients at z.
func polyEval(coeffs []complex128, z complex128) complex128 {
	var acc complex128
	for _, c := range coeffs {
		acc = acc*z + c
	}
	return acc
}

// lfilter applies the IIR filter (b, a) to x (direct form II
// transposed), like scipy.signal.lfilter with zero initial state.
func lfilter(b, a, x []float64) []float64 {
	n := len(b)
	z := make([]float64, n-1)
	y := make([]float64, len(x))
	for i, xv := range x {
		yv := b[0]*xv + z[0]
		for j := 1; j < n-1; j++ {
			z[j-1] = b[j]*xv + z[j] - a[j]*yv
		}
		z[n-2] = b[n-1]*xv - a[n-1]*yv
		y[i] = yv
	}
	return y
}

// FiltFilt applies the filter forward and backward for zero phase
// distortion, with odd-reflection edge padding — the smoothing
// scipy.signal.filtfilt performs on the paper's Fig 11 loss curves.
func FiltFilt(b, a, x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	pad := 3 * (len(b) - 1)
	if pad >= len(x) {
		pad = len(x) - 1
	}
	// Odd reflection: 2*x[0] - x[pad..1], x, 2*x[last] - x[n-2..n-1-pad].
	ext := make([]float64, 0, len(x)+2*pad)
	for i := pad; i >= 1; i-- {
		ext = append(ext, 2*x[0]-x[i])
	}
	ext = append(ext, x...)
	for i := len(x) - 2; i >= len(x)-1-pad && i >= 0; i-- {
		ext = append(ext, 2*x[len(x)-1]-x[i])
	}
	y := lfilter(b, a, ext)
	reverse(y)
	y = lfilter(b, a, y)
	reverse(y)
	return y[pad : pad+len(x)]
}

func reverse(x []float64) {
	for i, j := 0, len(x)-1; i < j; i, j = i+1, j-1 {
		x[i], x[j] = x[j], x[i]
	}
}

// SmoothLosses applies the paper's order-3 low-pass filtfilt to a loss
// curve, with a cutoff suited to per-iteration training noise.
func SmoothLosses(losses []float64) []float64 {
	if len(losses) < 13 {
		return append([]float64(nil), losses...)
	}
	b, a, err := Butterworth(3, 0.05)
	if err != nil {
		panic(err)
	}
	return FiltFilt(b, a, losses)
}
