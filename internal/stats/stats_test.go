package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 || s.N != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Fatalf("quartiles = %v, %v", s.P25, s.P75)
	}
	if s.IQR() != 2 {
		t.Fatalf("IQR = %v", s.IQR())
	}
}

func TestSummarizeInterpolatesQuantiles(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if s.Median != 5 || s.P25 != 2.5 || s.P75 != 7.5 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeP99SmallN(t *testing.T) {
	// N = 1: every quantile is the sample.
	if s := Summarize([]float64{7}); s.P99 != 7 {
		t.Fatalf("singleton P99 = %v", s.P99)
	}
	// N = 2: pos = 0.99 → 0.01·x[0] + 0.99·x[1].
	if s := Summarize([]float64{0, 100}); math.Abs(s.P99-99) > 1e-12 {
		t.Fatalf("two-sample P99 = %v, want 99", s.P99)
	}
	// N = 5: pos = 0.99·4 = 3.96 → between x[3] and x[4].
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if math.Abs(s.P99-4.96) > 1e-12 {
		t.Fatalf("five-sample P99 = %v, want 4.96", s.P99)
	}
	if s.P99 > s.Max || s.P99 < s.P75 {
		t.Fatalf("P99 = %v outside [P75=%v, Max=%v]", s.P99, s.P75, s.Max)
	}
	// N = 101 of 0..100: pos = 0.99·100 = 99 exactly.
	big := make([]float64, 101)
	for i := range big {
		big[i] = float64(i)
	}
	if s := Summarize(big); s.P99 != 99 {
		t.Fatalf("P99 of 0..100 = %v, want 99", s.P99)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary should be zero")
	}
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestButterworthRejectsBadArgs(t *testing.T) {
	if _, _, err := Butterworth(0, 0.5); err == nil {
		t.Fatal("order 0 must error")
	}
	if _, _, err := Butterworth(3, 0); err == nil {
		t.Fatal("cutoff 0 must error")
	}
	if _, _, err := Butterworth(3, 1); err == nil {
		t.Fatal("cutoff 1 must error")
	}
}

func TestButterworthDCGainIsOne(t *testing.T) {
	for _, order := range []int{1, 2, 3, 4} {
		for _, wn := range []float64{0.05, 0.3, 0.8} {
			b, a, err := Butterworth(order, wn)
			if err != nil {
				t.Fatal(err)
			}
			if a[0] != 1 {
				t.Fatalf("a[0] = %v, want 1", a[0])
			}
			var sb, sa float64
			for i := range b {
				sb += b[i]
				sa += a[i]
			}
			if math.Abs(sb/sa-1) > 1e-9 {
				t.Fatalf("order %d wn %v: DC gain = %v", order, wn, sb/sa)
			}
		}
	}
}

func TestButterworthMatchesSciPyOrder3(t *testing.T) {
	// scipy.signal.butter(3, 0.5) reference coefficients.
	b, a, err := Butterworth(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wantB := []float64{0.16666667, 0.5, 0.5, 0.16666667}
	wantA := []float64{1.0, -9.98400574e-17, 3.33333333e-01, -1.89805700e-17}
	for i := range wantB {
		if math.Abs(b[i]-wantB[i]) > 1e-6 {
			t.Fatalf("b[%d] = %v, want %v", i, b[i], wantB[i])
		}
		if math.Abs(a[i]-wantA[i]) > 1e-6 {
			t.Fatalf("a[%d] = %v, want %v", i, a[i], wantA[i])
		}
	}
}

func TestLowPassAttenuatesHighFrequency(t *testing.T) {
	b, a, err := Butterworth(3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Input: DC level 1 plus fast alternation; output should keep DC and
	// kill the alternation.
	n := 200
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 + 0.5*math.Pow(-1, float64(i))
	}
	y := FiltFilt(b, a, x)
	for i := 50; i < 150; i++ {
		if math.Abs(y[i]-1) > 0.05 {
			t.Fatalf("y[%d] = %v, want ~1", i, y[i])
		}
	}
}

func TestFiltFiltZeroPhase(t *testing.T) {
	// A symmetric pulse must stay symmetric (no phase shift).
	b, a, _ := Butterworth(3, 0.2)
	n := 101
	x := make([]float64, n)
	x[50] = 1
	y := FiltFilt(b, a, x)
	peak := 0
	for i := range y {
		if y[i] > y[peak] {
			peak = i
		}
	}
	if peak != 50 {
		t.Fatalf("peak moved to %d (phase distortion)", peak)
	}
	for off := 1; off < 20; off++ {
		if math.Abs(y[50-off]-y[50+off]) > 1e-9 {
			t.Fatalf("asymmetric response at ±%d: %v vs %v", off, y[50-off], y[50+off])
		}
	}
}

func TestFiltFiltPreservesLength(t *testing.T) {
	b, a, _ := Butterworth(3, 0.05)
	for _, n := range []int{1, 5, 30, 500} {
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
		}
		if got := len(FiltFilt(b, a, x)); got != n {
			t.Fatalf("length %d -> %d", n, got)
		}
	}
}

func TestSmoothLossesReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 400
	x := make([]float64, n)
	for i := range x {
		x[i] = 2.0 - float64(i)/300 + 0.3*rng.NormFloat64() // noisy decay
	}
	y := SmoothLosses(x)
	if len(y) != n {
		t.Fatalf("length changed: %d", len(y))
	}
	varOf := func(v []float64, trendOf []float64) float64 {
		var s float64
		for i := range v {
			d := v[i] - (2.0 - float64(i)/300)
			s += d * d
		}
		return s / float64(len(v))
	}
	if varOf(y, nil) > varOf(x, nil)/4 {
		t.Fatalf("smoothing too weak: %v vs %v", varOf(y, nil), varOf(x, nil))
	}
	// Short inputs pass through unchanged.
	short := []float64{1, 2, 3}
	got := SmoothLosses(short)
	if len(got) != 3 || got[0] != 1 {
		t.Fatal("short input must pass through")
	}
}
