// Package stats provides the statistical utilities the evaluation
// harness needs: five-number summaries for the paper's box-whisker
// latency plots (Figs 7, 8) and a zero-phase Butterworth low-pass filter
// reproducing the SciPy filtfilt smoothing applied to the loss curves of
// Fig 11.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a five-number summary plus mean and tail quantile — one
// box of a box-whisker plot. P99 serves the straggler detector's
// thresholds and histogram sanity checks; at small N it interpolates
// toward (and at N == 1 equals) the maximum.
type Summary struct {
	Min, P25, Median, P75, P99, Max, Mean float64
	N                                     int
}

// Summarize computes the summary of samples (which it sorts a copy of).
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Summary{
		Min:    s[0],
		P25:    quantile(s, 0.25),
		Median: quantile(s, 0.5),
		P75:    quantile(s, 0.75),
		P99:    quantile(s, 0.99),
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
		N:      len(s),
	}
}

// quantile linearly interpolates the q-quantile of sorted data.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly for benchmark tables.
func (s Summary) String() string {
	return fmt.Sprintf("min=%.4f p25=%.4f med=%.4f p75=%.4f max=%.4f", s.Min, s.P25, s.Median, s.P75, s.Max)
}

// IQR returns the interquartile range.
func (s Summary) IQR() float64 { return s.P75 - s.P25 }
