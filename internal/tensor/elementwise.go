package tensor

import (
	"fmt"
	"math"
)

func checkSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	checkSameShape("Add", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSameShape("Sub", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns a * b elementwise.
func Mul(a, b *Tensor) *Tensor {
	checkSameShape("Mul", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor {
	checkSameShape("Div", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] / b.data[i]
	}
	return out
}

// AddInPlace accumulates src into dst elementwise. Sizes must match.
func AddInPlace(dst, src *Tensor) {
	if len(dst.data) != len(src.data) {
		panic("tensor: AddInPlace size mismatch")
	}
	for i := range dst.data {
		dst.data[i] += src.data[i]
	}
}

// ScaleInPlace multiplies every element of t by s.
func ScaleInPlace(t *Tensor, s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AxpyInPlace computes dst += alpha*src elementwise.
func AxpyInPlace(dst *Tensor, alpha float32, src *Tensor) {
	if len(dst.data) != len(src.data) {
		panic("tensor: AxpyInPlace size mismatch")
	}
	for i := range dst.data {
		dst.data[i] += alpha * src.data[i]
	}
}

// AddScalar returns a + s elementwise.
func AddScalar(a *Tensor, s float32) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + s
	}
	return out
}

// MulScalar returns a * s elementwise.
func MulScalar(a *Tensor, s float32) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * s
	}
	return out
}

// Neg returns -a.
func Neg(a *Tensor) *Tensor { return MulScalar(a, -1) }

// AddRow returns m + row broadcast over the leading dimensions: m has
// shape [..., n] and row has shape [n]. Used for bias addition.
func AddRow(m, row *Tensor) *Tensor {
	n := row.Size()
	if m.Size()%n != 0 || m.Dims(m.Dim()-1) != n {
		panic(fmt.Sprintf("tensor: AddRow shapes %v and %v incompatible", m.shape, row.shape))
	}
	out := New(m.shape...)
	for i := range m.data {
		out.data[i] = m.data[i] + row.data[i%n]
	}
	return out
}

// MulRow returns m * row with row broadcast over the leading dimensions.
func MulRow(m, row *Tensor) *Tensor {
	n := row.Size()
	if m.Size()%n != 0 || m.Dims(m.Dim()-1) != n {
		panic(fmt.Sprintf("tensor: MulRow shapes %v and %v incompatible", m.shape, row.shape))
	}
	out := New(m.shape...)
	for i := range m.data {
		out.data[i] = m.data[i] * row.data[i%n]
	}
	return out
}

// SumRows reduces m of shape [..., n] over all leading dimensions,
// returning a tensor of shape [n]. It is the gradient of AddRow.
func SumRows(m *Tensor, n int) *Tensor {
	if m.Size()%n != 0 {
		panic("tensor: SumRows size not divisible")
	}
	out := New(n)
	for i, v := range m.data {
		out.data[i%n] += v
	}
	return out
}

// Apply returns f applied elementwise to a.
func Apply(a *Tensor, f func(float32) float32) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = f(v)
	}
	return out
}

// Relu returns max(0, x) elementwise.
func Relu(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// Tanh returns tanh(x) elementwise.
func Tanh(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 { return float32(math.Tanh(float64(v))) })
}

// Sigmoid returns 1/(1+exp(-x)) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 { return float32(1 / (1 + math.Exp(-float64(v)))) })
}

// Gelu returns the Gaussian error linear unit using the tanh approximation,
// matching the activation used in BERT.
func Gelu(a *Tensor) *Tensor {
	const c = 0.7978845608028654 // sqrt(2/pi)
	return Apply(a, func(v float32) float32 {
		x := float64(v)
		return float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	})
}

// Exp returns e^x elementwise.
func Exp(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 { return float32(math.Exp(float64(v))) })
}

// Log returns ln(x) elementwise.
func Log(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 { return float32(math.Log(float64(v))) })
}

// Sqrt returns the elementwise square root.
func Sqrt(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 { return float32(math.Sqrt(float64(v))) })
}
