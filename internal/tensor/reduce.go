package tensor

import (
	"fmt"
	"math"
)

// Sum returns the sum of all elements as a scalar tensor.
func Sum(a *Tensor) *Tensor {
	var s float32
	for _, v := range a.data {
		s += v
	}
	return Scalar(s)
}

// Mean returns the arithmetic mean of all elements as a scalar tensor.
func Mean(a *Tensor) *Tensor {
	if len(a.data) == 0 {
		panic("tensor: Mean of empty tensor")
	}
	return Scalar(Sum(a).Item() / float32(len(a.data)))
}

// MaxElem returns the largest element.
func MaxElem(a *Tensor) float32 {
	if len(a.data) == 0 {
		panic("tensor: MaxElem of empty tensor")
	}
	m := a.data[0]
	for _, v := range a.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMaxRows returns, for a [rows, cols] tensor, the column index of the
// maximum in each row. Used for classification accuracy.
func ArgMaxRows(a *Tensor) []int {
	if a.Dim() != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows on shape %v", a.shape))
	}
	rows, cols := a.shape[0], a.shape[1]
	out := make([]int, rows)
	for i := 0; i < rows; i++ {
		row := a.data[i*cols : (i+1)*cols]
		best := 0
		for j := 1; j < cols; j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// SoftmaxRows returns row-wise softmax of a [rows, cols] tensor, computed
// in a numerically stable way (max subtraction).
func SoftmaxRows(a *Tensor) *Tensor {
	if a.Dim() != 2 {
		panic(fmt.Sprintf("tensor: SoftmaxRows on shape %v", a.shape))
	}
	rows, cols := a.shape[0], a.shape[1]
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		row := a.data[i*cols : (i+1)*cols]
		orow := out.data[i*cols : (i+1)*cols]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - m))
			orow[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

// LogSoftmaxRows returns row-wise log-softmax of a [rows, cols] tensor.
func LogSoftmaxRows(a *Tensor) *Tensor {
	if a.Dim() != 2 {
		panic(fmt.Sprintf("tensor: LogSoftmaxRows on shape %v", a.shape))
	}
	rows, cols := a.shape[0], a.shape[1]
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		row := a.data[i*cols : (i+1)*cols]
		orow := out.data[i*cols : (i+1)*cols]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - m))
		}
		lse := float32(math.Log(sum)) + m
		for j, v := range row {
			orow[j] = v - lse
		}
	}
	return out
}

// MeanVar returns the mean and (biased) variance of all elements.
func MeanVar(a *Tensor) (mean, variance float32) {
	n := float64(len(a.data))
	if n == 0 {
		panic("tensor: MeanVar of empty tensor")
	}
	var s float64
	for _, v := range a.data {
		s += float64(v)
	}
	m := s / n
	var sq float64
	for _, v := range a.data {
		d := float64(v) - m
		sq += d * d
	}
	return float32(m), float32(sq / n)
}
