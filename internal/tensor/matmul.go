package tensor

import "fmt"

// MatMul returns the matrix product of a [m,k] and b [k,n] as [m,n].
// The inner loops are ordered i-k-j for cache-friendly row-major access.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dim() != 2 || b.Dim() != 2 || a.shape[1] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMul shapes %v x %v invalid", a.shape, b.shape))
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransA returns aᵀ·b for a [k,m] and b [k,n] as [m,n], without
// materializing the transpose. Used in linear-layer weight gradients.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Dim() != 2 || b.Dim() != 2 || a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMulTransA shapes %v x %v invalid", a.shape, b.shape))
	}
	k, m, n := a.shape[0], a.shape[1], b.shape[1]
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransB returns a·bᵀ for a [m,k] and b [n,k] as [m,n], without
// materializing the transpose. Used in linear-layer input gradients.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Dim() != 2 || b.Dim() != 2 || a.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransB shapes %v x %v invalid", a.shape, b.shape))
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			var s float32
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Dim() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D on shape %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// Dot returns the inner product of two equally-sized tensors.
func Dot(a, b *Tensor) float32 {
	if len(a.data) != len(b.data) {
		panic("tensor: Dot size mismatch")
	}
	var s float32
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}
