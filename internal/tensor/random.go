package tensor

import (
	"math"
	"math/rand"
)

// RandN fills a new tensor of the given shape with samples from a normal
// distribution with the given standard deviation, using rng. Every rank in
// a DDP test seeds its rng identically so replicas start from the same
// state, mirroring the paper's broadcast-at-construction guarantee.
func RandN(rng *rand.Rand, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64()) * std
	}
	return t
}

// RandUniform fills a new tensor with samples from [lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*rng.Float32()
	}
	return t
}

// KaimingUniform fills a new tensor using the fan-in-scaled uniform
// initialization PyTorch applies to Linear and Conv2d weights
// (bound = 1/sqrt(fanIn)).
func KaimingUniform(rng *rand.Rand, fanIn int, shape ...int) *Tensor {
	bound := float32(1 / math.Sqrt(float64(fanIn)))
	return RandUniform(rng, -bound, bound, shape...)
}
