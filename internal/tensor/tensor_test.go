package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	a := New(2, 3, 4)
	if a.Size() != 24 {
		t.Fatalf("Size = %d, want 24", a.Size())
	}
	if a.Dim() != 3 || a.Dims(0) != 2 || a.Dims(1) != 3 || a.Dims(2) != 4 {
		t.Fatalf("bad shape %v", a.Shape())
	}
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("New not zero-filled")
		}
	}
}

func TestScalar(t *testing.T) {
	s := Scalar(3.5)
	if s.Size() != 1 || s.Dim() != 0 || s.Item() != 3.5 {
		t.Fatalf("Scalar = %v", s)
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(3, 4)
	a.Set(7, 1, 2)
	if a.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", a.At(1, 2))
	}
	if a.Data()[1*4+2] != 7 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceOwnership(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	a := FromSlice(d, 2, 2)
	d[0] = 9
	if a.At(0, 0) != 9 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesStorage(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(42, 0, 1)
	if a.At(0, 1) != 42 {
		t.Fatal("Reshape must share storage")
	}
	c := a.Reshape(-1)
	if c.Dim() != 1 || c.Dims(0) != 6 {
		t.Fatalf("Reshape(-1) shape = %v", c.Shape())
	}
	d := a.Reshape(2, -1)
	if d.Dims(1) != 3 {
		t.Fatalf("inferred dim = %d, want 3", d.Dims(1))
	}
}

func TestReshapePanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := a.Clone()
	b.Set(5, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestCopyFromAcrossShapes(t *testing.T) {
	a := New(2, 3)
	b := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 6)
	a.CopyFrom(b)
	if a.At(1, 2) != 6 {
		t.Fatal("CopyFrom should copy flat contents")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{4, 3, 2, 1}, 2, 2)
	if got := Add(a, b); !got.Equal(Full(5, 2, 2)) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(a, b); !got.Equal(FromSlice([]float32{-3, -1, 1, 3}, 2, 2)) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); !got.Equal(FromSlice([]float32{4, 6, 6, 4}, 2, 2)) {
		t.Fatalf("Mul = %v", got)
	}
	if got := Div(a, b); !got.AllClose(FromSlice([]float32{0.25, 2.0 / 3, 1.5, 4}, 2, 2), 1e-6, 1e-6) {
		t.Fatalf("Div = %v", got)
	}
	if got := MulScalar(a, 2); !got.Equal(FromSlice([]float32{2, 4, 6, 8}, 2, 2)) {
		t.Fatalf("MulScalar = %v", got)
	}
	if got := AddScalar(a, 1); !got.Equal(FromSlice([]float32{2, 3, 4, 5}, 2, 2)) {
		t.Fatalf("AddScalar = %v", got)
	}
	if got := Neg(a); !got.Equal(FromSlice([]float32{-1, -2, -3, -4}, 2, 2)) {
		t.Fatalf("Neg = %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(New(2), New(3))
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	AddInPlace(a, FromSlice([]float32{10, 20}, 2))
	if !a.Equal(FromSlice([]float32{11, 22}, 2)) {
		t.Fatalf("AddInPlace = %v", a)
	}
	ScaleInPlace(a, 0.5)
	if !a.Equal(FromSlice([]float32{5.5, 11}, 2)) {
		t.Fatalf("ScaleInPlace = %v", a)
	}
	AxpyInPlace(a, 2, FromSlice([]float32{1, 1}, 2))
	if !a.Equal(FromSlice([]float32{7.5, 13}, 2)) {
		t.Fatalf("AxpyInPlace = %v", a)
	}
}

func TestAddRowSumRows(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	row := FromSlice([]float32{10, 20, 30}, 3)
	got := AddRow(m, row)
	want := FromSlice([]float32{11, 22, 33, 14, 25, 36}, 2, 3)
	if !got.Equal(want) {
		t.Fatalf("AddRow = %v", got)
	}
	s := SumRows(m, 3)
	if !s.Equal(FromSlice([]float32{5, 7, 9}, 3)) {
		t.Fatalf("SumRows = %v", s)
	}
}

func TestMulRow(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	row := FromSlice([]float32{2, 3}, 2)
	if got := MulRow(m, row); !got.Equal(FromSlice([]float32{2, 6, 6, 12}, 2, 2)) {
		t.Fatalf("MulRow = %v", got)
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float32{58, 64, 139, 154}, 2, 2)
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(rng, 1, 4, 5)
	b := RandN(rng, 1, 4, 6)
	got := MatMulTransA(a, b)
	want := MatMul(Transpose2D(a), b)
	if !got.AllClose(want, 1e-5, 1e-6) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}
	x := RandN(rng, 1, 3, 4)
	y := RandN(rng, 1, 5, 4)
	gotB := MatMulTransB(x, y)
	wantB := MatMul(x, Transpose2D(y))
	if !gotB.AllClose(wantB, 1e-5, 1e-6) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	got := Transpose2D(a)
	want := FromSlice([]float32{1, 4, 2, 5, 3, 6}, 3, 2)
	if !got.Equal(want) {
		t.Fatalf("Transpose2D = %v", got)
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v, want 32", Dot(a, b))
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	if Sum(a).Item() != 10 {
		t.Fatalf("Sum = %v", Sum(a).Item())
	}
	if Mean(a).Item() != 2.5 {
		t.Fatalf("Mean = %v", Mean(a).Item())
	}
	if MaxElem(a) != 4 {
		t.Fatalf("MaxElem = %v", MaxElem(a))
	}
}

func TestArgMaxRows(t *testing.T) {
	a := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	got := ArgMaxRows(a)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows = %v", got)
	}
}

func TestSoftmaxRowsSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandN(rng, 3, 4, 7)
	s := SoftmaxRows(a)
	for i := 0; i < 4; i++ {
		var sum float32
		for j := 0; j < 7; j++ {
			v := s.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(float64(sum-1)) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestLogSoftmaxMatchesLogOfSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandN(rng, 2, 3, 5)
	ls := LogSoftmaxRows(a)
	want := Log(SoftmaxRows(a))
	if !ls.AllClose(want, 1e-4, 1e-5) {
		t.Fatal("LogSoftmaxRows disagrees with Log(SoftmaxRows)")
	}
}

func TestSoftmaxStableForLargeInputs(t *testing.T) {
	a := FromSlice([]float32{1000, 1000, 1000}, 1, 3)
	s := SoftmaxRows(a)
	for j := 0; j < 3; j++ {
		if math.Abs(float64(s.At(0, j)-1.0/3)) > 1e-5 {
			t.Fatalf("unstable softmax: %v", s)
		}
	}
}

func TestUnaryFunctions(t *testing.T) {
	a := FromSlice([]float32{-1, 0, 2}, 3)
	if got := Relu(a); !got.Equal(FromSlice([]float32{0, 0, 2}, 3)) {
		t.Fatalf("Relu = %v", got)
	}
	if got := Exp(FromSlice([]float32{0}, 1)); got.At(0) != 1 {
		t.Fatalf("Exp(0) = %v", got)
	}
	if got := Sqrt(FromSlice([]float32{9}, 1)); got.At(0) != 3 {
		t.Fatalf("Sqrt(9) = %v", got)
	}
	if got := Sigmoid(FromSlice([]float32{0}, 1)); got.At(0) != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	if got := Tanh(FromSlice([]float32{0}, 1)); got.At(0) != 0 {
		t.Fatalf("Tanh(0) = %v", got)
	}
	if got := Gelu(FromSlice([]float32{0}, 1)); got.At(0) != 0 {
		t.Fatalf("Gelu(0) = %v", got)
	}
}

func TestMeanVar(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	m, v := MeanVar(a)
	if m != 2.5 || math.Abs(float64(v-1.25)) > 1e-6 {
		t.Fatalf("MeanVar = %v, %v", m, v)
	}
}

// Property: matmul distributes over addition, (A+B)C = AC + BC.
func TestMatMulDistributiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := RandN(rng, 1, m, k)
		b := RandN(rng, 1, m, k)
		c := RandN(rng, 1, k, n)
		left := MatMul(Add(a, b), c)
		right := Add(MatMul(a, c), MatMul(b, c))
		return left.AllClose(right, 1e-3, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Sub(x, x) is zero.
func TestElementwiseProperties(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				vals[i] = 1
			}
		}
		a := FromSlice(append([]float32(nil), vals...), len(vals))
		b := FromSlice(append([]float32(nil), vals...), len(vals))
		if !Add(a, b).Equal(Add(b, a)) {
			return false
		}
		z := Sub(a, a)
		for _, v := range z.Data() {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	in := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	w := FromSlice([]float32{1}, 1, 1, 1, 1)
	out := Conv2D(in, w, 1, 0)
	if !out.Reshape(9).Equal(in.Reshape(9)) {
		t.Fatalf("1x1 identity conv = %v", out)
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 2x2 sum kernel over a 3x3 input, stride 1, no padding.
	in := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	w := FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	out := Conv2D(in, w, 1, 0)
	want := FromSlice([]float32{12, 16, 24, 28}, 1, 1, 2, 2)
	if !out.Equal(want) {
		t.Fatalf("Conv2D = %v, want %v", out, want)
	}
}

func TestConv2DPaddingAndStride(t *testing.T) {
	in := Ones(1, 1, 4, 4)
	w := Ones(1, 1, 3, 3)
	out := Conv2D(in, w, 2, 1)
	if out.Dims(2) != 2 || out.Dims(3) != 2 {
		t.Fatalf("output shape %v, want [1 1 2 2]", out.Shape())
	}
	// Corner position covers a 2x2 region of ones.
	if out.At(0, 0, 0, 0) != 4 {
		t.Fatalf("corner = %v, want 4", out.At(0, 0, 0, 0))
	}
}

// Gradient check: conv backward matches numerical finite differences.
func TestConv2DBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := RandN(rng, 1, 1, 2, 4, 4)
	w := RandN(rng, 1, 3, 2, 3, 3)
	out := Conv2D(in, w, 1, 1)
	gout := Ones(out.Shape()...)
	gin, gw := Conv2DBackward(in, w, gout, 1, 1)

	sumOut := func() float32 { return Sum(Conv2D(in, w, 1, 1)).Item() }
	const eps = 1e-2
	for _, check := range []struct {
		t, g *Tensor
		name string
	}{{in, gin, "input"}, {w, gw, "weight"}} {
		for _, i := range []int{0, 3, check.t.Size() - 1} {
			orig := check.t.Data()[i]
			check.t.Data()[i] = orig + eps
			up := sumOut()
			check.t.Data()[i] = orig - eps
			down := sumOut()
			check.t.Data()[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(float64(num-check.g.Data()[i])) > 2e-2 {
				t.Fatalf("%s grad[%d] = %v, numerical %v", check.name, i, check.g.Data()[i], num)
			}
		}
	}
}

func TestAvgPool2DRoundTrip(t *testing.T) {
	in := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out := AvgPool2D(in)
	if out.At(0, 0) != 2.5 {
		t.Fatalf("AvgPool2D = %v", out)
	}
	gin := AvgPool2DBackward(Ones(1, 1), 2, 2)
	if gin.At(0, 0, 0, 0) != 0.25 {
		t.Fatalf("AvgPool2DBackward = %v", gin)
	}
}

func TestMaxPool2DRoundTrip(t *testing.T) {
	in := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, 1, 4, 4)
	out, arg := MaxPool2D(in)
	want := FromSlice([]float32{6, 8, 14, 16}, 1, 1, 2, 2)
	if !out.Equal(want) {
		t.Fatalf("MaxPool2D = %v, want %v", out, want)
	}
	gin := MaxPool2DBackward(Ones(1, 1, 2, 2), arg, in.Shape())
	if gin.At(0, 0, 1, 1) != 1 || gin.At(0, 0, 0, 0) != 0 {
		t.Fatalf("MaxPool2DBackward = %v", gin)
	}
}

func TestRandDeterministic(t *testing.T) {
	a := RandN(rand.New(rand.NewSource(42)), 1, 3, 3)
	b := RandN(rand.New(rand.NewSource(42)), 1, 3, 3)
	if !a.Equal(b) {
		t.Fatal("same seed must give identical tensors (DDP replicas rely on this)")
	}
	c := KaimingUniform(rand.New(rand.NewSource(1)), 16, 4, 4)
	bound := float32(1 / math.Sqrt(16))
	for _, v := range c.Data() {
		if v < -bound || v > bound {
			t.Fatalf("KaimingUniform out of bound: %v", v)
		}
	}
}

func TestAllCloseAndMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1.0001, 2}, 2)
	if !a.AllClose(b, 1e-3, 1e-3) {
		t.Fatal("AllClose should accept small differences")
	}
	if a.AllClose(FromSlice([]float32{2, 2}, 2), 1e-3, 1e-3) {
		t.Fatal("AllClose should reject large differences")
	}
	if d := a.MaxAbsDiff(b); d > 1e-3 || d == 0 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
}
