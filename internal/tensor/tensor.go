// Package tensor provides dense, row-major, float32 n-dimensional arrays
// and the numeric kernels the autograd engine and neural network layers
// are built on.
//
// Tensors are deliberately simple: contiguous storage, row-major layout,
// no strides. Views produced by Reshape share storage with the original;
// all other operations allocate their results. This mirrors the subset of
// PyTorch tensor semantics the DDP paper depends on (flat bucket views
// into gradient storage are modelled with Data and CopyFrom).
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense float32 n-dimensional array in row-major order.
// The zero value is an empty scalar-less tensor; use the constructors.
type Tensor struct {
	data  []float32
	shape []int
}

// New returns a zero-filled tensor with the given shape. A nil or empty
// shape produces a scalar (one element, zero dimensions).
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{data: make([]float32, n), shape: append([]int(nil), shape...)}
}

// FromSlice wraps data in a tensor of the given shape. The tensor takes
// ownership of the slice; it is not copied. The length of data must equal
// the product of the shape dimensions.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{data: data, shape: append([]int(nil), shape...)}
}

// Scalar returns a zero-dimensional tensor holding v.
func Scalar(v float32) *Tensor {
	return &Tensor{data: []float32{v}, shape: nil}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the number of dimensions.
func (t *Tensor) Dim() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Dims returns the size of dimension i.
func (t *Tensor) Dims(i int) int { return t.shape[i] }

// Data returns the underlying storage. Mutating it mutates the tensor;
// this is how communication backends and DDP buckets access gradients
// without copies.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Item returns the sole element of a one-element tensor.
func (t *Tensor) Item() float32 {
	if len(t.data) != 1 {
		panic(fmt.Sprintf("tensor: Item on tensor with %d elements", len(t.data)))
	}
	return t.data[0]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{data: append([]float32(nil), t.data...), shape: append([]int(nil), t.shape...)}
}

// CopyFrom copies src's elements into t. Sizes must match; shapes may
// differ (used to copy gradients into flat bucket views and back).
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.data), len(src.data)))
	}
	copy(t.data, src.data)
}

// Reshape returns a view with a new shape sharing the same storage.
// The element count must be preserved. One dimension may be -1, in which
// case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	n, infer := 1, -1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
			continue
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / n
		n *= shape[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape %v to %v changes element count", t.shape, shape))
	}
	return &Tensor{data: t.data, shape: shape}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Equal reports whether t and o have the same shape and identical elements.
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if t.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether t and o have the same shape and elementwise
// |a-b| <= atol + rtol*|b|.
func (t *Tensor) AllClose(o *Tensor, rtol, atol float32) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		d := float64(t.data[i] - o.data[i])
		if math.Abs(d) > float64(atol)+float64(rtol)*math.Abs(float64(o.data[i])) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// t and o, which must have equal sizes.
func (t *Tensor) MaxAbsDiff(o *Tensor) float32 {
	if len(t.data) != len(o.data) {
		panic("tensor: MaxAbsDiff size mismatch")
	}
	var m float32
	for i := range t.data {
		d := t.data[i] - o.data[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// String renders small tensors in full and large ones as a summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%d elements]", t.shape, len(t.data))
}
