package tensor

import "fmt"

// Conv2D computes a 2-D cross-correlation of input [n, cin, h, w] with
// weights [cout, cin, kh, kw], with the given stride and zero padding,
// returning [n, cout, oh, ow]. This is the forward kernel used by the
// nn.Conv2d layer; it is a direct (non-im2col) implementation, which is
// adequate for the small models trained for real in this reproduction.
func Conv2D(in, w *Tensor, stride, pad int) *Tensor {
	if in.Dim() != 4 || w.Dim() != 4 || in.shape[1] != w.shape[1] {
		panic(fmt.Sprintf("tensor: Conv2D shapes %v, %v invalid", in.shape, w.shape))
	}
	n, cin, h, wd := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	cout, kh, kw := w.shape[0], w.shape[2], w.shape[3]
	oh := (h+2*pad-kh)/stride + 1
	ow := (wd+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Conv2D output %dx%d non-positive", oh, ow))
	}
	out := New(n, cout, oh, ow)
	for b := 0; b < n; b++ {
		for co := 0; co < cout; co++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float32
					for ci := 0; ci < cin; ci++ {
						for ky := 0; ky < kh; ky++ {
							iy := oy*stride + ky - pad
							if iy < 0 || iy >= h {
								continue
							}
							inBase := ((b*cin+ci)*h + iy) * wd
							wBase := ((co*cin+ci)*kh + ky) * kw
							for kx := 0; kx < kw; kx++ {
								ix := ox*stride + kx - pad
								if ix < 0 || ix >= wd {
									continue
								}
								acc += in.data[inBase+ix] * w.data[wBase+kx]
							}
						}
					}
					out.data[((b*cout+co)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	return out
}

// Conv2DBackward computes the gradients of Conv2D with respect to the
// input and the weights, given the upstream gradient gout of shape
// [n, cout, oh, ow]. It returns (gradInput, gradWeight).
func Conv2DBackward(in, w, gout *Tensor, stride, pad int) (gin, gw *Tensor) {
	n, cin, h, wd := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	cout, kh, kw := w.shape[0], w.shape[2], w.shape[3]
	oh, ow := gout.shape[2], gout.shape[3]
	gin = New(in.shape...)
	gw = New(w.shape...)
	for b := 0; b < n; b++ {
		for co := 0; co < cout; co++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gout.data[((b*cout+co)*oh+oy)*ow+ox]
					if g == 0 {
						continue
					}
					for ci := 0; ci < cin; ci++ {
						for ky := 0; ky < kh; ky++ {
							iy := oy*stride + ky - pad
							if iy < 0 || iy >= h {
								continue
							}
							inBase := ((b*cin+ci)*h + iy) * wd
							wBase := ((co*cin+ci)*kh + ky) * kw
							for kx := 0; kx < kw; kx++ {
								ix := ox*stride + kx - pad
								if ix < 0 || ix >= wd {
									continue
								}
								gin.data[inBase+ix] += g * w.data[wBase+kx]
								gw.data[wBase+kx] += g * in.data[inBase+ix]
							}
						}
					}
				}
			}
		}
	}
	return gin, gw
}

// AvgPool2D computes global average pooling over the spatial dimensions
// of input [n, c, h, w], returning [n, c].
func AvgPool2D(in *Tensor) *Tensor {
	if in.Dim() != 4 {
		panic(fmt.Sprintf("tensor: AvgPool2D on shape %v", in.shape))
	}
	n, c, h, w := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	out := New(n, c)
	area := float32(h * w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			var s float32
			for i := 0; i < h*w; i++ {
				s += in.data[base+i]
			}
			out.data[b*c+ch] = s / area
		}
	}
	return out
}

// AvgPool2DBackward distributes gout [n, c] evenly over the spatial
// positions of the input gradient [n, c, h, w].
func AvgPool2DBackward(gout *Tensor, h, w int) *Tensor {
	n, c := gout.shape[0], gout.shape[1]
	gin := New(n, c, h, w)
	inv := 1 / float32(h*w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			g := gout.data[b*c+ch] * inv
			base := ((b*c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				gin.data[base+i] = g
			}
		}
	}
	return gin
}

// MaxPool2D computes 2x2/stride-2 max pooling of input [n, c, h, w],
// returning the pooled tensor and the argmax indices used by the
// backward pass.
func MaxPool2D(in *Tensor) (*Tensor, []int) {
	if in.Dim() != 4 {
		panic(fmt.Sprintf("tensor: MaxPool2D on shape %v", in.shape))
	}
	n, c, h, w := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	oh, ow := h/2, w/2
	out := New(n, c, oh, ow)
	arg := make([]int, n*c*oh*ow)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := ((b*c+ch)*h+oy*2)*w + ox*2
					best := in.data[bestIdx]
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							idx := ((b*c+ch)*h+oy*2+dy)*w + ox*2 + dx
							if in.data[idx] > best {
								best, bestIdx = in.data[idx], idx
							}
						}
					}
					o := ((b*c+ch)*oh+oy)*ow + ox
					out.data[o] = best
					arg[o] = bestIdx
				}
			}
		}
	}
	return out, arg
}

// MaxPool2DBackward routes gout back to the argmax positions recorded by
// MaxPool2D, producing the input gradient with the given input shape.
func MaxPool2DBackward(gout *Tensor, arg []int, inShape []int) *Tensor {
	gin := New(inShape...)
	for o, idx := range arg {
		gin.data[idx] += gout.data[o]
	}
	return gin
}
