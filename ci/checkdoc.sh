#!/bin/sh
# checkdoc.sh — CI gate: every exported top-level identifier in the
# audited packages must carry a godoc comment.
#
# The check is a grep-grade approximation (by design — it runs anywhere
# a POSIX shell does, with no build step): a top-level declaration line
# beginning with `func X`, `type X`, `var X`, or `const X` for an
# exported X must be immediately preceded by a comment line (`//...`) or
# sit inside a commented declaration group. Grouped var/const blocks are
# given a pass when the group itself is documented.
#
# Audited packages: the fault-tolerance stack (elastic, store,
# transport), the checkpoint subsystem (ckpt), the collective layer
# (comm), the gradient-reduction engine (reduce) and its clients (ddp,
# fsdp), the hardware cost model (hw), the observability plane
# (metrics, trace), and the correctness tooling (lint, testutil,
# testutil/leakcheck, chaos) — the packages whose exported surface the
# architecture docs point into.
set -eu

cd "$(dirname "$0")/.."

fail=0
for dir in internal/elastic internal/store internal/transport internal/ckpt internal/comm internal/reduce internal/ddp internal/fsdp internal/hw internal/metrics internal/trace internal/lint internal/testutil internal/testutil/leakcheck internal/chaos; do
    for f in "$dir"/*.go; do
        case "$f" in
        *_test.go | *'*'*) continue ;;
        esac
        out=$(awk '
            # Track whether the previous line was a comment (godoc).
            /^\/\// { prevcomment = 1; next }
            /^\t\/\// { prevcomment = 1; next }
            # Inside a var (/const ( group: an exported member needs its
            # own comment unless the group itself is documented.
            /^(var|const) \($/ { ingroup = 1; groupdoc = prevcomment; prevcomment = 0; next }
            /^\)/ { ingroup = 0; prevcomment = 0; next }
            ingroup == 1 {
                if ($0 ~ /^\t[A-Z]/ && !prevcomment && !groupdoc) printf "%d: %s\n", NR, $0
                prevcomment = 0; next
            }
            /^(func|type|var|const) [A-Z]/ {
                if (!prevcomment) printf "%d: %s\n", NR, $0
                prevcomment = 0; next
            }
            # Methods: func (recv T) Name — an exported method on an
            # exported receiver type needs a doc; methods implementing an
            # interface on an unexported type inherit the interface docs.
            /^func \([^)]*\) [A-Z]/ {
                recv = $0
                sub(/^func \([a-zA-Z0-9_]* \*?/, "", recv)
                if (recv ~ /^[A-Z]/ && !prevcomment) printf "%d: %s\n", NR, $0
                prevcomment = 0; next
            }
            { prevcomment = 0 }
        ' "$f")
        if [ -n "$out" ]; then
            echo "undocumented exported identifiers in $f:" >&2
            echo "$out" >&2
            fail=1
        fi
    done
done
if [ "$fail" -ne 0 ]; then
    echo "checkdoc: add godoc comments to the identifiers above" >&2
    exit 1
fi
echo "checkdoc: all exported identifiers documented"
