#!/bin/sh
# bench_check.sh — gate the benchmark summaries the comm suite writes
# to the repository root (BENCH_allreduce.json, BENCH_compression.json).
#
# Two performance contracts are asserted against the freshly generated
# records:
#
#   1. Double binary trees beat Ring at small payloads. For the TCP
#      mesh at world 8, the doubletree p50 must be strictly below the
#      ring p50 at 1024 and 4096 elements. Measured margins are
#      2.4-2.9x, so a strict inequality is a loose gate even at the CI
#      runner's -benchtime=1x.
#
#   2. The compressed leader ring actually compresses the wire. The
#      fp16 hierarchical run's cross-host bytes/op must sit within
#      [1.8, 2.2]x below the uncompressed hierarchical run's. The byte
#      count is deterministic (measured ratio 2.00003); the band only
#      absorbs future framing tweaks.
#
# Requires jq. Run after `go test -bench . ...` has refreshed the
# JSON files (CI's "Bench smoke" step).

set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
allreduce="$root/BENCH_allreduce.json"

fail() {
	echo "bench_check: $*" >&2
	exit 1
}

[ -f "$allreduce" ] || fail "missing $allreduce (run the comm benchmarks first)"

ver=$(jq -r '.schema_version' "$allreduce")
[ "$ver" = "2" ] || fail "BENCH_allreduce.json schema_version = $ver, want 2"

# p50 of a tcp world-8 row for a given algorithm and element count.
p50() {
	jq -r --arg algo "$1" --argjson elems "$2" '
		[.records[]
		 | select(.transport == "tcp" and .world == 8
		          and .algorithm == $algo and .elems == $elems
		          and (.codec // "") == "")
		 | .hist_p50_ns][0] // "missing"' "$allreduce"
}

for elems in 1024 4096; do
	ring=$(p50 ring "$elems")
	dtree=$(p50 doubletree "$elems")
	[ "$ring" != "missing" ] || fail "no tcp world-8 ring row at $elems elems"
	[ "$dtree" != "missing" ] || fail "no tcp world-8 doubletree row at $elems elems"
	ok=$(jq -n --argjson r "$ring" --argjson d "$dtree" '$d < $r')
	[ "$ok" = "true" ] || fail "doubletree p50 ($dtree ns) not below ring p50 ($ring ns) at $elems elems"
	echo "bench_check: doubletree p50 $dtree ns < ring p50 $ring ns at $elems elems"
done

# Cross-host bytes/op of the hierarchical (leader-ring) benchmark rows.
crossbytes() {
	jq -r --arg codec "$1" '
		[.records[]
		 | select(.transport == "tcp" and .world == 8
		          and .algorithm == "hierarchical" and .elems == 131072
		          and (.codec // "") == $codec)
		 | .cross_host_bytes_per_op][0] // "missing"' "$allreduce"
}

raw=$(crossbytes "")
fp16=$(crossbytes "fp16")
[ "$raw" != "missing" ] || fail "no uncompressed hierarchical cross-host row"
[ "$fp16" != "missing" ] || fail "no fp16 hierarchical cross-host row"
ok=$(jq -n --argjson r "$raw" --argjson c "$fp16" '($r / $c) >= 1.8 and ($r / $c) <= 2.2')
[ "$ok" = "true" ] || fail "fp16 cross-host ratio $raw/$fp16 outside [1.8, 2.2]"
echo "bench_check: fp16 leader ring cross-host ratio $(jq -n --argjson r "$raw" --argjson c "$fp16" '$r / $c') within [1.8, 2.2]"

echo "bench_check: OK"
