#!/bin/sh
# bench_check.sh — gate the benchmark summaries the comm suite writes
# to the repository root (BENCH_allreduce.json, BENCH_compression.json)
# and the sharding ablation's BENCH_sharding.json (regenerate with
# `ddpbench -exp sharding`).
#
# Performance contracts asserted against the freshly generated
# records:
#
#   1. Double binary trees beat Ring at small payloads. For the TCP
#      mesh at world 8, the doubletree p50 must be strictly below the
#      ring p50 at 1024 and 4096 elements. Measured margins are
#      2.4-2.9x, so a strict inequality is a loose gate even at the CI
#      runner's -benchtime=1x.
#
#   2. The compressed leader ring actually compresses the wire. The
#      fp16 hierarchical run's cross-host bytes/op must sit within
#      [1.8, 2.2]x below the uncompressed hierarchical run's. The byte
#      count is deterministic (measured ratio 2.00003); the band only
#      absorbs future framing tweaks.
#
#   3. ZeRO-3 actually shards memory. At world 4, its persistent
#      per-rank parameter+optimizer bytes must sit within (1/4 + 5%)
#      of the replicated DDP row's, its peak parameter residency must
#      stay strictly below the full model (no rank ever holds every
#      parameter), and every sharded row must have reproduced the DDP
#      trajectory bitwise.
#
# Requires jq. Run after `go test -bench . ...` has refreshed the
# JSON files (CI's "Bench smoke" step).

set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
allreduce="$root/BENCH_allreduce.json"

fail() {
	echo "bench_check: $*" >&2
	exit 1
}

[ -f "$allreduce" ] || fail "missing $allreduce (run the comm benchmarks first)"

ver=$(jq -r '.schema_version' "$allreduce")
[ "$ver" = "2" ] || fail "BENCH_allreduce.json schema_version = $ver, want 2"

# p50 of a tcp world-8 row for a given algorithm and element count.
p50() {
	jq -r --arg algo "$1" --argjson elems "$2" '
		[.records[]
		 | select(.transport == "tcp" and .world == 8
		          and .algorithm == $algo and .elems == $elems
		          and (.codec // "") == "")
		 | .hist_p50_ns][0] // "missing"' "$allreduce"
}

for elems in 1024 4096; do
	ring=$(p50 ring "$elems")
	dtree=$(p50 doubletree "$elems")
	[ "$ring" != "missing" ] || fail "no tcp world-8 ring row at $elems elems"
	[ "$dtree" != "missing" ] || fail "no tcp world-8 doubletree row at $elems elems"
	ok=$(jq -n --argjson r "$ring" --argjson d "$dtree" '$d < $r')
	[ "$ok" = "true" ] || fail "doubletree p50 ($dtree ns) not below ring p50 ($ring ns) at $elems elems"
	echo "bench_check: doubletree p50 $dtree ns < ring p50 $ring ns at $elems elems"
done

# Cross-host bytes/op of the hierarchical (leader-ring) benchmark rows.
crossbytes() {
	jq -r --arg codec "$1" '
		[.records[]
		 | select(.transport == "tcp" and .world == 8
		          and .algorithm == "hierarchical" and .elems == 131072
		          and (.codec // "") == $codec)
		 | .cross_host_bytes_per_op][0] // "missing"' "$allreduce"
}

raw=$(crossbytes "")
fp16=$(crossbytes "fp16")
[ "$raw" != "missing" ] || fail "no uncompressed hierarchical cross-host row"
[ "$fp16" != "missing" ] || fail "no fp16 hierarchical cross-host row"
ok=$(jq -n --argjson r "$raw" --argjson c "$fp16" '($r / $c) >= 1.8 and ($r / $c) <= 2.2')
[ "$ok" = "true" ] || fail "fp16 cross-host ratio $raw/$fp16 outside [1.8, 2.2]"
echo "bench_check: fp16 leader ring cross-host ratio $(jq -n --argjson r "$raw" --argjson c "$fp16" '$r / $c') within [1.8, 2.2]"

# --- sharding memory gate (BENCH_sharding.json) ------------------------------

sharding="$root/BENCH_sharding.json"
[ -f "$sharding" ] || fail "missing $sharding (run: ddpbench -exp sharding)"

sver=$(jq -r '.schema_version' "$sharding")
[ "$sver" = "2" ] || fail "BENCH_sharding.json schema_version = $sver, want 2"

# Persistent per-rank state (param shard + optimizer shard) of a
# strategy's world-4 row.
state() {
	jq -r --arg strategy "$1" '
		[.records[]
		 | select(.strategy == $strategy and .world == 4)
		 | .shard_param_bytes + .optimizer_bytes][0] // "missing"' "$sharding"
}

ddp_state=$(state ddp)
z3_state=$(state zero3)
[ "$ddp_state" != "missing" ] || fail "no ddp world-4 sharding row"
[ "$z3_state" != "missing" ] || fail "no zero3 world-4 sharding row"
ok=$(jq -n --argjson d "$ddp_state" --argjson z "$z3_state" '$z <= (0.25 + 0.05) * $d')
[ "$ok" = "true" ] || fail "zero3 world-4 param+opt bytes ($z3_state) exceed (1/4+5%) of DDP's ($ddp_state)"
echo "bench_check: zero3 world-4 param+opt $z3_state B <= (1/4+5%) x DDP $ddp_state B"

peak_ok=$(jq -r '
	[.records[] | select(.strategy == "zero3" and .world == 4)
	 | (.peak_param_bytes < .full_param_bytes)][0] // "missing"' "$sharding")
[ "$peak_ok" = "true" ] || fail "zero3 world-4 peak param bytes not below the full model"
echo "bench_check: zero3 world-4 peak param residency below the full model"

nonbitwise=$(jq -r '[.records[] | select(.bitwise_vs_ddp | not)] | length' "$sharding")
[ "$nonbitwise" = "0" ] || fail "$nonbitwise sharding rows diverged from the DDP trajectory"
echo "bench_check: all sharding rows bitwise-identical to DDP"

echo "bench_check: OK"
