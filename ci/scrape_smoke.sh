#!/bin/sh
# scrape_smoke.sh — CI gate: the metrics plane works end to end.
#
# Runs the ddptrain elastic demo (crash + recovery + checkpointing)
# with -metrics-addr and -trace-out, scrapes /metrics over HTTP while
# the job trains, and asserts that the observability contract holds:
#
#   - the collective histograms are populated (comm_allreduce_*),
#   - the checkpoint SLO gauges moved (ckpt_last_*),
#   - the elastic plane reports generation/world/recoveries,
#   - the per-bucket DDP histogram and transport counters are live,
#   - the recovery span JSON parses and every span's phase durations
#     sum exactly to the span's duration (the tiling invariant).
#
# Artifacts (scrape + span trees) land in SCRAPE_SMOKE_DIR (default: a
# fresh temp dir) so the workflow can upload them.
set -eu

cd "$(dirname "$0")/.."

dir="${SCRAPE_SMOKE_DIR:-$(mktemp -d)}"
mkdir -p "$dir"
bin="$dir/ddptrain"
log="$dir/ddptrain.log"
scrape="$dir/metrics.txt"
spans="$dir/recovery-spans.json"

go build -o "$bin" ./cmd/ddptrain

# Port 0: the kernel picks a free port; parse it from the startup line.
"$bin" -elastic -world 3 -iters 120 -kill-step 40 \
    -metrics-addr 127.0.0.1:0 -trace-out "$spans" \
    -ckpt-dir "$dir/ckpt" -ckpt-every 10 >"$log" 2>&1 &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's|.*serving http://\([^/]*\)/metrics.*|\1|p' "$log")
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "scrape_smoke: ddptrain exited before serving metrics" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "scrape_smoke: metrics server never announced itself" >&2
    cat "$log" >&2
    exit 1
fi

# Poll the endpoint until one scrape shows the whole contract at once
# (training, recovery, and at least one checkpoint save have happened),
# or the demo exits. Each successful scrape is kept, so the last one
# before exit is available for the assertions either way.
want_live() {
    grep -q '^comm_allreduce_duration_seconds_count' "$scrape" &&
        awk '/^comm_allreduce_duration_seconds_count/ { if ($2+0 > 0) ok=1 } END { exit !ok }' "$scrape" &&
        awk '/^elastic_recoveries_total/ { if ($2+0 > 0) ok=1 } END { exit !ok }' "$scrape" &&
        awk '/^ckpt_save_duration_seconds_count/ { if ($2+0 > 0) ok=1 } END { exit !ok }' "$scrape"
}
live=0
i=0
while [ $i -lt 300 ]; do
    curl -sf "http://$addr/metrics" -o "$scrape.tmp" 2>/dev/null && mv "$scrape.tmp" "$scrape" || true
    if [ -s "$scrape" ] && want_live; then
        live=1
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done

if ! wait "$pid"; then
    echo "scrape_smoke: ddptrain failed" >&2
    cat "$log" >&2
    exit 1
fi
if [ "$live" -ne 1 ]; then
    echo "scrape_smoke: never caught a live scrape with collectives+recovery+checkpoint populated" >&2
    cat "$log" >&2
    [ -s "$scrape" ] && cat "$scrape" >&2
    exit 1
fi

# Family-presence assertions on the captured scrape.
fail=0
for family in \
    comm_allreduce_duration_seconds_bucket \
    comm_allreduce_payload_bytes_bucket \
    ddp_bucket_reduce_duration_seconds_bucket \
    transport_frames_sent_total \
    transport_bytes_sent_total \
    elastic_generation \
    elastic_world_size \
    elastic_recoveries_total \
    elastic_recovery_duration_seconds_bucket \
    elastic_heartbeat_misses_total \
    ckpt_save_duration_seconds_bucket \
    ckpt_last_save_duration_seconds \
    ckpt_last_saved_step; do
    if ! grep -q "^$family" "$scrape"; then
        echo "scrape_smoke: metric family $family missing from scrape" >&2
        fail=1
    fi
done
# Every sample line must parse as `name{labels} value` with a numeric
# value — the text-format contract a real Prometheus server relies on.
if ! awk '!/^#/ && NF { if (NF != 2 || $2 != $2+0) { print "bad line: " $0; exit 1 } }' "$scrape"; then
    echo "scrape_smoke: unparseable sample line in scrape" >&2
    fail=1
fi

# The recovery span dump: valid JSON, and phases tile every span.
if ! python3 - "$spans" <<'EOF'
import json, sys
spans = json.load(open(sys.argv[1]))
assert spans, "no recovery spans recorded"
for s in spans:
    assert s["name"] == "recovery", s["name"]
    kids = s.get("children") or []
    assert kids, "recovery span with no phases"
    total = sum(c["duration_ns"] for c in kids)
    assert total == s["duration_ns"], f"phases sum to {total}, span is {s['duration_ns']}"
print(f"scrape_smoke: {len(spans)} recovery spans, all phase-tiled")
EOF
then
    echo "scrape_smoke: recovery span JSON failed validation" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "scrape_smoke: metrics endpoint and recovery trace verified ($scrape)"
