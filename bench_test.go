// Benchmarks regenerating every table and figure of the paper's
// evaluation (one Benchmark per experiment id in DESIGN.md), plus
// real-execution micro-benchmarks of the collective stack and the DDP
// reducer, and ablation benches for the design choices DESIGN.md calls
// out. Key quantities are attached via b.ReportMetric; run
// cmd/ddpbench for the full printed tables.
package repro_test

import (
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/autograd"
	"repro/internal/bench"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/pipeline"
	"repro/internal/ps"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// --- Experiment benchmarks: one per paper table/figure ---

func BenchmarkFig2AllReduceCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	nccl := bench.Fig2CommCurve(hw.NCCLLike)
	gloo := bench.Fig2CommCurve(hw.GlooLike)
	b.ReportMetric(nccl[0].TotalSeconds/nccl[len(nccl)-1].TotalSeconds, "nccl-1K/20M-ratio")
	b.ReportMetric(gloo[0].TotalSeconds/gloo[len(gloo)-1].TotalSeconds, "gloo-1K/20M-ratio")
}

func BenchmarkFig6LatencyBreakdown(b *testing.B) {
	var rows []bench.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig6Breakdown()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.SpeedupPct, r.Model+"/"+r.Backend.String()+"-speedup-%")
	}
}

func BenchmarkFig7BucketSize16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.BucketSizeSweep(16, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8BucketSize32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.BucketSizeSweep(32, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Scalability(b *testing.B) {
	var points []bench.ScalabilityPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = bench.Fig9Scalability(16)
		if err != nil {
			b.Fatal(err)
		}
	}
	var first, last float64
	for _, p := range points {
		if p.Model == "resnet50" && p.Backend == hw.NCCLLike {
			if p.World == 1 {
				first = p.MeanSeconds
			}
			if p.World == 256 {
				last = p.MeanSeconds
			}
		}
	}
	b.ReportMetric(256/(last/first), "resnet-nccl-scaling-factor")
}

func BenchmarkFig10SkipSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10SkipSync(16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Convergence(b *testing.B) {
	// Real distributed training (shortened); the full curves come from
	// `ddpbench -exp fig11`.
	for i := 0; i < b.N; i++ {
		curves, err := bench.Fig11Panel(2, 8, 0.02, 40)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(curves[0].FinalLoss, "sync1-final-loss")
			b.ReportMetric(curves[3].FinalLoss, "sync8-final-loss")
		}
	}
}

func BenchmarkFig12RoundRobin(b *testing.B) {
	var points []bench.RoundRobinPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = bench.Fig12RoundRobin()
		if err != nil {
			b.Fatal(err)
		}
	}
	var rr1, rr3 float64
	for _, p := range points {
		if p.Model == "bert-large" && p.Backend == hw.NCCLLike && p.World == 16 {
			switch p.Groups {
			case 1:
				rr1 = p.MedianSeconds
			case 3:
				rr3 = p.MedianSeconds
			}
		}
	}
	b.ReportMetric(100*(1-rr3/rr1), "bert-nccl-rr3-gain-%")
}

func BenchmarkTable1Taxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Real-execution micro-benchmarks of the substrate ---

// benchAllReduce measures a real in-process AllReduce of n float32s
// across 4 goroutine ranks.
func benchAllReduce(b *testing.B, algo comm.Algorithm, n int) {
	const world = 4
	groups := comm.NewInProcGroups(world, comm.Options{Algorithm: algo})
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	bufs := make([][]float32, world)
	for r := range bufs {
		bufs[r] = make([]float32, n)
	}
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if err := groups[rank].AllReduce(bufs[rank], comm.Sum).Wait(); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
	}
}

func BenchmarkRingAllReduce4K(b *testing.B)  { benchAllReduce(b, comm.Ring, 1024) }
func BenchmarkRingAllReduce4M(b *testing.B)  { benchAllReduce(b, comm.Ring, 1<<20) }
func BenchmarkTreeAllReduce4M(b *testing.B)  { benchAllReduce(b, comm.Tree, 1<<20) }
func BenchmarkNaiveAllReduce4M(b *testing.B) { benchAllReduce(b, comm.Naive, 1<<20) }

// BenchmarkDDPTrainingStep measures a full real DDP iteration (forward,
// backward with overlapped AllReduce, optimizer) on 4 goroutine ranks.
func BenchmarkDDPTrainingStep(b *testing.B) {
	const world = 4
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	type rankState struct {
		d   *ddp.DDP
		opt *optim.SGD
		x   *autograd.Variable
		y   *autograd.Variable
	}
	states := make([]*rankState, world)
	var initWG sync.WaitGroup
	for r := 0; r < world; r++ {
		initWG.Add(1)
		go func(rank int) {
			defer initWG.Done()
			rng := rand.New(rand.NewSource(int64(rank)))
			model := models.NewMLP(1, 64, 128, 10)
			d, err := ddp.New(model, groups[rank], ddp.Options{})
			if err != nil {
				b.Error(err)
				return
			}
			states[rank] = &rankState{
				d:   d,
				opt: optim.NewSGD(d.Parameters(), 0.01),
				x:   autograd.Constant(tensor.RandN(rng, 1, 16, 64)),
				y:   autograd.Constant(tensor.RandN(rng, 1, 16, 10)),
			}
		}(r)
	}
	initWG.Wait()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				s := states[rank]
				out := s.d.Forward(s.x)
				if err := s.d.Backward(autograd.MSELoss(out, s.y)); err != nil {
					b.Error(err)
					return
				}
				s.opt.Step()
				s.opt.ZeroGrad()
			}(r)
		}
		wg.Wait()
	}
}

// BenchmarkBucketAssignment measures the reverse-order bucket packing on
// the full BERT-large profile (398 parameters).
func BenchmarkBucketAssignment(b *testing.B) {
	sizes := models.BERTLarge().Sizes()
	order := ddp.ReverseOrder(len(sizes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ddp.AssignBuckets(sizes, 25<<20, 4, order); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackwardMLP isolates the autograd engine's backward pass.
func BenchmarkBackwardMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	model := models.NewMLP(1, 128, 256, 10)
	x := autograd.Constant(tensor.RandN(rng, 1, 32, 128))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ZeroGrad(model)
		out := model.Forward(x)
		autograd.Backward(autograd.Sum(out), nil)
	}
}

// --- Ablation benchmarks for DESIGN.md's design choices ---

// BenchmarkAblationOverlap quantifies what turning off overlap costs
// (the paper's central optimization), at 32 GPUs on the simulator.
func BenchmarkAblationOverlap(b *testing.B) {
	cfg := simnet.Config{
		ParamSizes: models.ResNet50().Sizes(),
		World:      32,
		Backend:    hw.NCCLLike,
		Device:     hw.GPU,
	}
	var on, off simnet.Breakdown
	for i := 0; i < b.N; i++ {
		var err error
		cfg.Overlap = true
		on, err = simnet.SimulateIteration(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Overlap = false
		off, err = simnet.SimulateIteration(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(1-on.TotalSeconds/off.TotalSeconds), "overlap-speedup-%")
}

// BenchmarkAblationBucketOrder compares reverse-parameter-order buckets
// (DDP's heuristic) against forward-order buckets, which strand the
// first-ready gradients in the last bucket and destroy overlap.
func BenchmarkAblationBucketOrder(b *testing.B) {
	sizes := models.ResNet50().Sizes()
	reverse := ddp.ReverseOrder(len(sizes))
	forward := make([]int, len(sizes))
	for i := range forward {
		forward[i] = i
	}
	var rev, fwd *ddp.Assignment
	for i := 0; i < b.N; i++ {
		var err error
		rev, err = ddp.AssignBuckets(sizes, 25<<20, 4, reverse)
		if err != nil {
			b.Fatal(err)
		}
		fwd, err = ddp.AssignBuckets(sizes, 25<<20, 4, forward)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rev.NumBuckets()), "reverse-buckets")
	b.ReportMetric(float64(fwd.NumBuckets()), "forward-buckets")
}

// BenchmarkAblationCompression measures the simulated latency effect of
// fp16 and 1-bit gradient compression at 64 GPUs (Section 6.2.3).
func BenchmarkAblationCompression(b *testing.B) {
	base := simnet.Config{
		ParamSizes: models.ResNet50().Sizes(),
		World:      64,
		Backend:    hw.NCCLLike,
		Device:     hw.GPU,
		Overlap:    true,
	}
	ratios := map[string]float64{"none": 1, "fp16": 2, "1bit": 32}
	results := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for name, ratio := range ratios {
			cfg := base
			cfg.CompressionRatio = ratio
			r, err := simnet.SimulateIteration(cfg)
			if err != nil {
				b.Fatal(err)
			}
			results[name] = r.TotalSeconds
		}
	}
	b.ReportMetric(100*(1-results["fp16"]/results["none"]), "fp16-latency-gain-%")
	b.ReportMetric(100*(1-results["1bit"]/results["none"]), "1bit-latency-gain-%")
}

// BenchmarkAblationFindUnused measures the real cost of the extra bitmap
// AllReduce that FindUnusedParameters adds per iteration.
func BenchmarkAblationFindUnused(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			const world = 4
			groups := comm.NewInProcGroups(world, comm.Options{})
			defer func() {
				for _, g := range groups {
					g.Close()
				}
			}()
			ddps := make([]*ddp.DDP, world)
			xs := make([]*autograd.Variable, world)
			var initWG sync.WaitGroup
			for r := 0; r < world; r++ {
				initWG.Add(1)
				go func(rank int) {
					defer initWG.Done()
					rng := rand.New(rand.NewSource(int64(rank)))
					model := models.NewMLP(1, 32, 64, 8)
					d, err := ddp.New(model, groups[rank], ddp.Options{FindUnusedParameters: mode.on})
					if err != nil {
						b.Error(err)
						return
					}
					ddps[rank] = d
					xs[rank] = autograd.Constant(tensor.RandN(rng, 1, 8, 32))
				}(r)
			}
			initWG.Wait()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for r := 0; r < world; r++ {
					wg.Add(1)
					go func(rank int) {
						defer wg.Done()
						d := ddps[rank]
						nn.ZeroGrad(d.Module())
						out := d.Forward(xs[rank])
						if err := d.Backward(autograd.Sum(out)); err != nil {
							b.Error(err)
						}
					}(r)
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkZeroSGDStep measures one sharded-optimizer step (gradient
// ReduceScatter + shard update + parameter AllGather) on 4 ranks.
func BenchmarkZeroSGDStep(b *testing.B) {
	const world = 4
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	type rankState struct {
		m   nn.Module
		opt *optim.ZeroSGD
	}
	states := make([]*rankState, world)
	for r := 0; r < world; r++ {
		m := models.NewMLP(1, 64, 128, 10)
		opt, err := optim.NewZeroSGD(m.Parameters(), groups[r], 0.01)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(r)))
		out := m.Forward(autograd.Constant(tensor.RandN(rng, 1, 8, 64)))
		autograd.Backward(autograd.Sum(out), nil)
		states[r] = &rankState{m: m, opt: opt}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if err := states[rank].opt.Step(); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
	}
}

// BenchmarkCheckpointedBackward compares recompute-in-backward against
// plain execution for a 3-layer segment.
func BenchmarkCheckpointedBackward(b *testing.B) {
	for _, mode := range []struct {
		name string
		ck   bool
	}{{"plain", false}, {"checkpointed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			body := nn.NewSequential(
				nn.NewLinear(rng, "a", 64, 128), nn.Tanh{},
				nn.NewLinear(rng, "b", 128, 64),
			)
			var m nn.Module = body
			if mode.ck {
				m = nn.NewCheckpointed(body)
			}
			x := autograd.Constant(tensor.RandN(rng, 1, 16, 64))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nn.ZeroGrad(m)
				autograd.Backward(autograd.Sum(m.Forward(x)), nil)
			}
		})
	}
}

// BenchmarkPipelineTrainBatch measures a 2-stage GPipe step with 4
// micro-batches.
func BenchmarkPipelineTrainBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p, err := pipeline.New(
		nn.NewSequential(nn.NewLinear(rng, "a", 32, 64), nn.Tanh{}),
		nn.NewSequential(nn.NewLinear(rng, "b", 64, 8)),
	)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.RandN(rng, 1, 32, 32)
	y := tensor.RandN(rng, 1, 32, 8)
	loss := func(out *autograd.Variable, target *tensor.Tensor) *autograd.Variable {
		return autograd.MSELoss(out, autograd.Constant(target))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ZeroGrad()
		if _, err := p.TrainBatch(x, y, 4, loss); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParameterServerStep measures one asynchronous pull/compute/
// push cycle against a local server.
func BenchmarkParameterServerStep(b *testing.B) {
	srv := ps.NewServer(models.NewMLP(1, 64, 128, 10), 0.01)
	worker := ps.NewWorker(models.NewMLP(1, 64, 128, 10), srv)
	rng := rand.New(rand.NewSource(3))
	x := autograd.Constant(tensor.RandN(rng, 1, 8, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := worker.Step(func() (float32, error) {
			out := worker.Model.Forward(x)
			autograd.Backward(autograd.Sum(out), nil)
			return 0, nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
